//! Section 4: logically equivalent, linear-size representations when
//! `|P|` is bounded by a constant.
//!
//! The constructions exploit Proposition 2.1 (all relevant differences
//! stay inside `V(P)`) and Proposition 4.2 (`M ⊨ F` iff
//! `M△H ⊨ F[H/H̄]`) to enumerate the at most `2^|V(P)|` candidate
//! difference sets `S ⊆ V(P)` *in the formula itself*:
//!
//! - formula (5), Winslett: `P ∧ ⋁_S (T[S/S̄] ∧ ⋀_{∅≠C⊆S} ¬P[C/C̄])`
//! - Corollary 4.4, Borgida: `T ∧ P` if consistent, else formula (5)
//! - formula (6), Forbus: as (5) with the cardinality guard
//!   `|C△S| < |S|`
//! - formula (7), Satoh: `P ∧ ⋁_{S ∈ δ(T,P)} T[S/S̄]`
//! - formula (8), Dalal: `P ∧ ⋁_{|S| = k_{T,P}} T[S/S̄]`
//! - formula (9), Weber: `P ∧ ⋁_{S ⊆ Ω} T[S/S̄]`
//!
//! Every disjunct contains one flipped copy of `T`, so the size is
//! `O(2^{2k} · (|T| + |P|))` — *linear in `|T|`* for fixed `k`.
//! Unlike the Section 3 constructions these introduce **no new
//! letters**: they are logically equivalent (criterion (2)).

use crate::compact::rep::CompactRep;
use crate::distance::{delta_sets_over, min_distance_over, union_vars};
use revkb_logic::{Formula, Var};

/// All subsets of `vars`, as vectors (ascending by mask).
fn subsets(vars: &[Var]) -> Vec<Vec<Var>> {
    assert!(
        vars.len() < 24,
        "V(P) too large for the bounded construction"
    );
    (0..1u64 << vars.len())
        .map(|mask| {
            vars.iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect()
        })
        .collect()
}

fn as_mask(vars: &[Var], subset: &[Var]) -> u64 {
    subset
        .iter()
        .map(|v| 1u64 << vars.iter().position(|x| x == v).expect("subset of vars"))
        .fold(0, |a, b| a | b)
}

/// Handle the degenerate inputs the paper sets aside: returns
/// `Some(rep)` when `T` or `P` is unsatisfiable.
fn degenerate(t: &Formula, p: &Formula, base: Vec<Var>) -> Option<CompactRep> {
    if !revkb_sat::satisfiable(p) {
        return Some(CompactRep::logical(Formula::False, base));
    }
    if !revkb_sat::satisfiable(t) {
        return Some(CompactRep::logical(p.clone(), base));
    }
    None
}

/// Formula (5): `T *Win P` as a logically equivalent formula of size
/// linear in `|T|` (Proposition 4.3).
pub fn winslett_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let disjuncts = subsets(&pvars).into_iter().map(|s| {
        let s_mask = as_mask(&pvars, &s);
        let t_flipped = t.flip(&s);
        // No model of P strictly closer: for every nonempty C ⊆ S,
        // ¬P[C/C̄].
        let guards = Formula::and_all(subsets(&s).into_iter().filter_map(|c| {
            if c.is_empty() {
                None
            } else {
                Some(p.flip(&c).not())
            }
        }));
        let _ = s_mask;
        t_flipped.and(guards)
    });
    CompactRep::logical(p.clone().and(Formula::or_all(disjuncts)), base)
}

/// Corollary 4.4: `T *B P` — `T ∧ P` when consistent, formula (5)
/// otherwise. Logically equivalent, size linear in `|T|`.
pub fn borgida_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    if revkb_sat::satisfiable(&t.clone().and(p.clone())) {
        CompactRep::logical(t.clone().and(p.clone()), base)
    } else {
        winslett_bounded(t, p)
    }
}

/// Formula (6): `T *F P` — as Winslett's but with the cardinality
/// guard `|C△S| < |S|` (Theorem 4.5).
pub fn forbus_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let all_subsets = subsets(&pvars);
    let disjuncts = all_subsets.iter().map(|s| {
        let s_mask = as_mask(&pvars, s);
        let t_flipped = t.flip(s);
        let guards = Formula::and_all(all_subsets.iter().filter_map(|c| {
            let c_mask = as_mask(&pvars, c);
            if (c_mask ^ s_mask).count_ones() < s_mask.count_ones() {
                Some(p.flip(c).not())
            } else {
                None
            }
        }));
        t_flipped.and(guards)
    });
    CompactRep::logical(p.clone().and(Formula::or_all(disjuncts)), base)
}

/// Formula (7): `T *S P = P ∧ ⋁_{S ∈ δ(T,P)} T[S/S̄]` (Theorem 4.6).
pub fn satoh_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    let delta =
        delta_sets_over(t, p, &base, 1 << 22).expect("δ enumeration exceeded the bounded-case cap");
    let disjuncts = delta.into_iter().map(|s| {
        let s_vec: Vec<Var> = s.into_iter().collect();
        t.flip(&s_vec)
    });
    CompactRep::logical(p.clone().and(Formula::or_all(disjuncts)), base)
}

/// Formula (8): `T *D P = P ∧ ⋁_{S ⊆ V(P), |S| = k_{T,P}} T[S/S̄]`
/// (Theorem 4.6). Minimal-distance difference sets always lie inside
/// `V(P)`, so `S` ranges over `V(P)` only.
pub fn dalal_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    let k = min_distance_over(t, p, &base).expect("both sides satisfiable");
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let disjuncts = subsets(&pvars)
        .into_iter()
        .filter(|s| s.len() == k)
        .map(|s| t.flip(&s));
    CompactRep::logical(p.clone().and(Formula::or_all(disjuncts)), base)
}

/// Formula (9): `T *Web P = P ∧ ⋁_{S ⊆ Ω} T[S/S̄]` (Theorem 4.6;
/// this is Weber's own definition read off directly).
pub fn weber_bounded(t: &Formula, p: &Formula) -> CompactRep {
    let base = union_vars(t, p);
    if let Some(rep) = degenerate(t, p, base.clone()) {
        return rep;
    }
    let omega: Vec<Var> = crate::distance::omega_over(t, p, &base, 1 << 22)
        .expect("δ enumeration exceeded the bounded-case cap")
        .into_iter()
        .collect();
    let disjuncts = subsets(&omega).into_iter().map(|s| t.flip(&s));
    CompactRep::logical(p.clone().and(Formula::or_all(disjuncts)), base)
}

/// The paper's §4.2 simplification: "all representations can be
/// simplified by omitting in the disjunction all `T[S/S̄]` which are
/// inconsistent with `P`."
///
/// Operates on the shape the constructions produce — a top-level
/// conjunction whose last-level disjunctions enumerate the flip cases:
/// each disjunct is kept iff it is satisfiable together with the rest
/// of the conjunction. Logical equivalence is preserved (only
/// context-unsatisfiable disjuncts are dropped); the size usually
/// shrinks substantially because most `S ⊆ V(P)` flips contradict `P`.
pub fn prune_disjuncts(rep: &CompactRep) -> CompactRep {
    let Formula::And(parts) = &rep.formula else {
        return rep.clone();
    };
    let pruned_parts: Vec<Formula> = parts
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let Formula::Or(disjuncts) = part else {
                return part.clone();
            };
            let context = Formula::and_all(
                parts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, q)| q.clone()),
            );
            Formula::or_all(disjuncts.iter().filter_map(|d| {
                let probe = context.clone().and(d.clone());
                if revkb_sat::satisfiable(&probe) {
                    Some(d.clone())
                } else {
                    None
                }
            }))
        })
        .collect();
    CompactRep::new(
        Formula::and_all(pruned_parts),
        rep.base.clone(),
        rep.logical,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_set::ModelSet;
    use crate::semantic::{revise_on, ModelBasedOp};
    use revkb_logic::Alphabet;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn check(op: ModelBasedOp, t: &Formula, p: &Formula) {
        let rep = match op {
            ModelBasedOp::Winslett => winslett_bounded(t, p),
            ModelBasedOp::Borgida => borgida_bounded(t, p),
            ModelBasedOp::Forbus => forbus_bounded(t, p),
            ModelBasedOp::Satoh => satoh_bounded(t, p),
            ModelBasedOp::Dalal => dalal_bounded(t, p),
            ModelBasedOp::Weber => weber_bounded(t, p),
        };
        assert!(rep.logical, "bounded reps are logically equivalent");
        let alpha = Alphabet::new(rep.base.clone());
        let oracle = revise_on(op, &alpha, t, p);
        let got = ModelSet::of_formula(alpha, &rep.formula);
        assert_eq!(
            got,
            oracle,
            "bounded {} rep wrong for {t:?} * {p:?}\nformula: {:?}",
            op.name(),
            rep.formula
        );
    }

    #[test]
    fn paper_section_4_1_example() {
        // §4.1 example: T = a∧b∧c∧d∧e, P = ¬a ∨ ¬b; Forbus models
        // {a,c,d,e} and {b,c,d,e}.
        let t = Formula::and_all((0..5).map(v));
        let p = v(0).not().or(v(1).not());
        check(ModelBasedOp::Forbus, &t, &p);
        let rep = forbus_bounded(&t, &p);
        // The two expected models.
        let alpha = Alphabet::new(rep.base.clone());
        let ms = ModelSet::of_formula(alpha, &rep.formula);
        assert_eq!(ms.len(), 2);
        assert!(rep.formula.size() <= 40 * t.size(), "not linear in |T|");
    }

    #[test]
    fn paper_section_4_2_example() {
        // §4.2 example: same T, P; T*S = T*D has models {a,c,d,e},
        // {b,c,d,e}; T*Web additionally {c,d,e}.
        let t = Formula::and_all((0..5).map(v));
        let p = v(0).not().or(v(1).not());
        for op in [
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            check(op, &t, &p);
        }
        let weber = weber_bounded(&t, &p);
        let alpha = Alphabet::new(weber.base.clone());
        let ms = ModelSet::of_formula(alpha, &weber.formula);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn winslett_bounded_single_letter_update() {
        // §6's example: T = x1∧…∧x5, P = ¬x1: unique result model.
        let t = Formula::and_all((0..5).map(v));
        let p = v(0).not();
        check(ModelBasedOp::Winslett, &t, &p);
        check(ModelBasedOp::Borgida, &t, &p);
    }

    #[test]
    fn all_ops_on_random_bounded_instances() {
        let mut seed = 21u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32, lo: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(lo + r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv, lo);
            let b = build(rnd, depth - 1, nv, lo);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.implies(b),
            }
        }
        let mut checked = 0;
        for _ in 0..30 {
            // T over 5 letters, P over the first 2 (bounded).
            let t = build(&mut rnd, 3, 5, 0);
            let p = build(&mut rnd, 2, 2, 0);
            if !revkb_sat::satisfiable(&t) || !revkb_sat::satisfiable(&p) {
                continue;
            }
            for op in ModelBasedOp::ALL {
                check(op, &t, &p);
            }
            checked += 1;
        }
        assert!(checked >= 8, "too few satisfiable samples: {checked}");
    }

    #[test]
    fn size_linear_in_t_for_fixed_p() {
        // Sweep |T| with P fixed: representation size must grow
        // linearly (ratio to |T| bounded).
        let p = v(0).not().or(v(1).not());
        let mut ratios = Vec::new();
        for n in [6u32, 12, 24] {
            let t = Formula::and_all((0..n).map(v));
            let rep = forbus_bounded(&t, &p);
            ratios.push(rep.size() as f64 / t.size() as f64);
        }
        let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
            / ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.6, "ratio not stable: {ratios:?}");
    }

    #[test]
    fn pruning_preserves_equivalence_and_shrinks() {
        // §4.1 example: T = a∧b∧c∧d∧e, P = ¬a ∨ ¬b.
        let t = Formula::and_all((0..5).map(v));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let rep = match op {
                ModelBasedOp::Winslett => winslett_bounded(&t, &p),
                ModelBasedOp::Borgida => borgida_bounded(&t, &p),
                ModelBasedOp::Forbus => forbus_bounded(&t, &p),
                ModelBasedOp::Satoh => satoh_bounded(&t, &p),
                ModelBasedOp::Dalal => dalal_bounded(&t, &p),
                ModelBasedOp::Weber => weber_bounded(&t, &p),
            };
            let pruned = prune_disjuncts(&rep);
            assert!(
                revkb_sat::equivalent(&rep.formula, &pruned.formula),
                "{} pruning changed semantics",
                op.name()
            );
            assert!(
                pruned.size() <= rep.size(),
                "{} pruning grew the formula",
                op.name()
            );
        }
        // Winslett's (5) contains flips contradicting P: real shrink.
        let rep = winslett_bounded(&t, &p);
        let pruned = prune_disjuncts(&rep);
        assert!(pruned.size() < rep.size(), "expected a strict shrink");
    }

    #[test]
    fn pruning_is_identity_on_non_conjunctions() {
        let rep = CompactRep::logical(v(0).or(v(1)), vec![Var(0), Var(1)]);
        let pruned = prune_disjuncts(&rep);
        assert_eq!(pruned.formula, rep.formula);
    }

    #[test]
    fn degenerate_inputs() {
        let unsat = v(0).and(v(0).not());
        let p = v(1);
        for f in [
            winslett_bounded(&unsat, &p),
            forbus_bounded(&unsat, &p),
            satoh_bounded(&unsat, &p),
            dalal_bounded(&unsat, &p),
            weber_bounded(&unsat, &p),
            borgida_bounded(&unsat, &p),
        ] {
            assert!(revkb_sat::equivalent(&f.formula, &p));
        }
        let rep = winslett_bounded(&p, &unsat);
        assert!(!revkb_sat::satisfiable(&rep.formula));
    }
}
