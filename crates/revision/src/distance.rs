//! SAT-based computation of the paper's proximity measures: the
//! minimum Hamming distance `k_{T,P}` (Dalal), the set `δ(T,P)` of
//! ⊆-minimal differences (Satoh) and `Ω = ⋃δ(T,P)` (Weber).
//!
//! These are the quantities the query-compactable constructions
//! pre-compute *offline* (step 1 of the paper's two-step query
//! answering). Unlike the enumeration oracle in [`crate::semantic`],
//! everything here runs on the CDCL solver and scales to alphabets far
//! beyond `2ⁿ` enumeration:
//!
//! - `k_{T,P}`: probe `T[X/Y] ∧ P ∧ EXA(d, X, Y, W)` for `d = 0, 1, …`
//! - `δ(T,P)`: find a satisfying difference, shrink it to a ⊆-minimal
//!   one, block all its supersets, repeat.

use revkb_circuits::exa;
use revkb_logic::{Formula, Substitution, Var, VarSupply};
use revkb_sat::supply_above;
use std::collections::BTreeSet;

/// The result of renaming `T`'s base letters apart from `P`'s.
struct RenamedPair {
    /// `T` with every letter (base and otherwise) renamed fresh.
    t_renamed: Formula,
    /// The fresh copies of the base letters, aligned with `xs`.
    ys: Vec<Var>,
}

/// Rename *all* letters of `t` to fresh ones so it shares nothing with
/// `p`; returns the copies of the base letters `xs` (other letters get
/// fresh names too, keeping any auxiliary letters of `t` disjoint).
fn rename_apart(t: &Formula, xs: &[Var], supply: &mut impl VarSupply) -> RenamedPair {
    let all_vars: Vec<Var> = t.vars().into_iter().collect();
    let mut sub = Substitution::new();
    let mut ys_map = std::collections::HashMap::new();
    for &v in &all_vars {
        let fresh = supply.fresh_var();
        sub = sub.bind(v, Formula::var(fresh));
        ys_map.insert(v, fresh);
    }
    let ys: Vec<Var> = xs
        .iter()
        .map(|&x| *ys_map.entry(x).or_insert_with(|| supply.fresh_var()))
        .collect();
    RenamedPair {
        t_renamed: sub.apply(t),
        ys,
    }
}

/// `k_{T,P}` generalised: the minimum Hamming distance, measured over
/// the letters `xs`, between models of `a` and models of `b`.
/// Letters of `a`/`b` outside `xs` are free. Returns `None` when
/// either formula is unsatisfiable.
///
/// This is exactly what iterated Dalal needs: `a` may be a compact
/// representation with auxiliary letters, whose projection onto `xs`
/// is the current revised theory.
pub fn min_distance_over(a: &Formula, b: &Formula, xs: &[Var]) -> Option<usize> {
    if !revkb_sat::satisfiable(a) || !revkb_sat::satisfiable(b) {
        return None;
    }
    let mut supply = supply_above([a, b]);
    let renamed = rename_apart(a, xs, &mut supply);
    let base = renamed.t_renamed.and(b.clone());
    for d in 0..=xs.len() {
        let probe = base.clone().and(exa(d, xs, &renamed.ys, &mut supply));
        if revkb_sat::satisfiable(&probe) {
            return Some(d);
        }
    }
    unreachable!("distance over |xs| letters cannot exceed |xs|")
}

/// `k_{T,P}`: minimum distance between models of `t` and models of
/// `p`, over `V(T) ∪ V(P)`.
///
/// ```
/// use revkb_revision::distance::min_distance;
/// use revkb_logic::{Formula, Var};
/// let t = Formula::var(Var(0)).and(Formula::var(Var(1)));
/// let p = Formula::var(Var(0)).not().and(Formula::var(Var(1)).not());
/// assert_eq!(min_distance(&t, &p), Some(2));
/// ```
pub fn min_distance(t: &Formula, p: &Formula) -> Option<usize> {
    let xs: Vec<Var> = union_vars(t, p);
    min_distance_over(t, p, &xs)
}

/// Enumerate `δ(T,P)` — the ⊆-minimal difference sets between models
/// of `a` and models of `b`, measured over `xs` — up to `limit` sets.
/// Returns `None` if the limit was exceeded.
pub fn delta_sets_over(
    a: &Formula,
    b: &Formula,
    xs: &[Var],
    limit: usize,
) -> Option<Vec<BTreeSet<Var>>> {
    if !revkb_sat::satisfiable(a) || !revkb_sat::satisfiable(b) {
        return Some(Vec::new());
    }
    let mut supply = supply_above([a, b]);
    let renamed = rename_apart(a, xs, &mut supply);
    let ys = &renamed.ys;
    // Working constraint: a(Y) ∧ b(X) ∧ blocking clauses.
    let mut constraint = renamed.t_renamed.and(b.clone());
    let mut found: Vec<BTreeSet<Var>> = Vec::new();

    // diff(x_i) ≡ (x_i ≢ y_i): expressed directly per letter.
    let agrees = |i: usize| Formula::var(xs[i]).iff(Formula::var(ys[i]));

    loop {
        let model = match revkb_sat::find_model(&constraint) {
            None => return Some(found),
            Some(m) => m,
        };
        // Current difference set.
        let mut diff: BTreeSet<usize> = (0..xs.len())
            .filter(|&i| model.contains(&xs[i]) != model.contains(&ys[i]))
            .collect();
        // Shrink to a ⊆-minimal difference: ask for a strictly smaller
        // one (agree outside diff, differ on a strict subset).
        loop {
            let smaller = Formula::and_all((0..xs.len()).filter(|i| !diff.contains(i)).map(agrees))
                .and(if diff.is_empty() {
                    Formula::False
                } else {
                    Formula::or_all(diff.iter().map(|&i| agrees(i)))
                })
                .and(constraint.clone());
            match revkb_sat::find_model(&smaller) {
                None => break, // diff is minimal
                Some(m2) => {
                    diff = (0..xs.len())
                        .filter(|&i| m2.contains(&xs[i]) != m2.contains(&ys[i]))
                        .collect();
                }
            }
        }
        if found.len() >= limit {
            return None;
        }
        // Block every superset of diff: future pairs must agree on at
        // least one letter of diff. An empty minimal diff means the
        // two formulas intersect: δ = {∅} and we are done.
        if diff.is_empty() {
            found.push(BTreeSet::new());
            return Some(found);
        }
        constraint = constraint.and(Formula::or_all(diff.iter().map(|&i| agrees(i))));
        found.push(diff.into_iter().map(|i| xs[i]).collect());
    }
}

/// `δ(T,P)` over `V(T) ∪ V(P)`, up to `limit` sets.
pub fn delta_sets(t: &Formula, p: &Formula, limit: usize) -> Option<Vec<BTreeSet<Var>>> {
    let xs = union_vars(t, p);
    delta_sets_over(t, p, &xs, limit)
}

/// `Ω = ⋃ δ(T,P)` over `xs`, up to `limit` difference sets.
pub fn omega_over(a: &Formula, b: &Formula, xs: &[Var], limit: usize) -> Option<BTreeSet<Var>> {
    delta_sets_over(a, b, xs, limit).map(|sets| sets.into_iter().flatten().collect())
}

/// `Ω` over `V(T) ∪ V(P)`.
pub fn omega(t: &Formula, p: &Formula, limit: usize) -> Option<BTreeSet<Var>> {
    let xs = union_vars(t, p);
    omega_over(t, p, &xs, limit)
}

/// `V(T) ∪ V(P)` in `Var` order.
pub fn union_vars(t: &Formula, p: &Formula) -> Vec<Var> {
    let mut vars = t.vars();
    p.collect_vars(&mut vars);
    vars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic;
    use revkb_logic::Alphabet;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Cross-check the SAT path against the enumeration oracle.
    fn check_against_oracle(t: &Formula, p: &Formula) {
        let alpha = Alphabet::of_formulas([t, p]);
        let t_models = alpha.models(t);
        let p_models = alpha.models(p);
        let expected_k = semantic::k_global(&t_models, &p_models).map(|k| k as usize);
        assert_eq!(
            min_distance(t, p),
            expected_k,
            "k mismatch for {t:?}, {p:?}"
        );

        let expected_delta: std::collections::BTreeSet<BTreeSet<Var>> =
            semantic::delta(&t_models, &p_models)
                .into_iter()
                .map(|mask| {
                    alpha
                        .mask_to_interpretation(mask)
                        .into_iter()
                        .collect::<BTreeSet<Var>>()
                })
                .collect();
        let got_delta: std::collections::BTreeSet<BTreeSet<Var>> =
            delta_sets(t, p, 10_000).unwrap().into_iter().collect();
        if t_models.is_empty() || p_models.is_empty() {
            assert!(got_delta.is_empty());
        } else {
            assert_eq!(got_delta, expected_delta, "δ mismatch for {t:?}, {p:?}");
            let expected_omega: BTreeSet<Var> = alpha
                .mask_to_interpretation(semantic::omega_mask(&t_models, &p_models))
                .into_iter()
                .collect();
            assert_eq!(omega(t, p, 10_000).unwrap(), expected_omega);
        }
    }

    #[test]
    fn paper_example_distances() {
        // §2.2.2 example: k_{T,P} = 1, δ = {{c},{a,b}}, Ω = {a,b,c}.
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        assert_eq!(min_distance(&t, &p), Some(1));
        let d = delta_sets(&t, &p, 100).unwrap();
        let as_sets: std::collections::BTreeSet<BTreeSet<Var>> = d.into_iter().collect();
        let expected: std::collections::BTreeSet<BTreeSet<Var>> = [
            [Var(2)].into_iter().collect::<BTreeSet<_>>(),
            [Var(0), Var(1)].into_iter().collect(),
        ]
        .into_iter()
        .collect();
        assert_eq!(as_sets, expected);
        let om = omega(&t, &p, 100).unwrap();
        let expected_om: BTreeSet<Var> = [Var(0), Var(1), Var(2)].into_iter().collect();
        assert_eq!(om, expected_om);
        check_against_oracle(&t, &p);
    }

    #[test]
    fn consistent_pair_distance_zero() {
        let t = v(0).or(v(1));
        let p = v(0).not();
        assert_eq!(min_distance(&t, &p), Some(0));
        let d = delta_sets(&t, &p, 100).unwrap();
        assert_eq!(d, vec![BTreeSet::new()]);
        assert_eq!(omega(&t, &p, 100).unwrap(), BTreeSet::new());
    }

    #[test]
    fn unsat_sides() {
        let t = v(0).and(v(0).not());
        let p = v(1);
        assert_eq!(min_distance(&t, &p), None);
        assert_eq!(min_distance(&p, &t), None);
        assert!(delta_sets(&t, &p, 100).unwrap().is_empty());
    }

    #[test]
    fn random_cross_check() {
        let mut seed = 7u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv);
            let b = build(rnd, depth - 1, nv);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.implies(b),
            }
        }
        for _ in 0..25 {
            let t = build(&mut rnd, 3, 4);
            let p = build(&mut rnd, 3, 4);
            check_against_oracle(&t, &p);
        }
    }

    #[test]
    fn min_distance_over_subset_of_letters() {
        // Distance measured only over {x0}: T = x0 ∧ x1, P = ¬x0 ∧ ¬x1
        // has distance 1 over {x0} but 2 over both letters.
        let t = v(0).and(v(1));
        let p = v(0).not().and(v(1).not());
        assert_eq!(min_distance_over(&t, &p, &[Var(0)]), Some(1));
        assert_eq!(min_distance(&t, &p), Some(2));
    }

    #[test]
    fn delta_limit_truncation() {
        // T = x0∧x1∧x2, P = exactly-one-false: three singleton minimal
        // diffs.
        let t = v(0).and(v(1)).and(v(2));
        let p = Formula::or_all(
            (0..3)
                .map(|i| Formula::and_all((0..3).map(|j| if i == j { v(j).not() } else { v(j) }))),
        );
        assert_eq!(delta_sets(&t, &p, 100).unwrap().len(), 3);
        assert!(delta_sets(&t, &p, 2).is_none());
    }
}
