//! Query answering for the formula-based operators (GFUV, Nebel,
//! WIDTIO).
//!
//! GFUV has no compact representation to compile into (Theorem 3.1) —
//! the honest engine therefore materialises `W(T,P)` once (with an
//! explicit budget, since it can be exponential) and answers
//! entailment by iterating over the worlds: the paper's
//! "delay and pay at query time" trade-off made explicit. WIDTIO, by
//! contrast, compiles to a sub-theory (always compact).

use crate::formula_based::{possible_worlds, widtio, Theory};
use revkb_logic::Formula;

/// Error: the possible-worlds budget was exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldBudgetExceeded {
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for WorldBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} possible worlds (Theorem 3.1: GFUV has no compact \
             representation; raise the budget or switch operator)",
            self.budget
        )
    }
}

impl std::error::Error for WorldBudgetExceeded {}

/// A GFUV-revised knowledge base with the possible worlds
/// materialised.
#[derive(Debug, Clone)]
pub struct GfuvKb {
    theory: Theory,
    p: Formula,
    /// Worlds as conjunctions `⋀T' ∧ P`, precomputed.
    world_formulas: Vec<Formula>,
}

impl GfuvKb {
    /// Materialise `W(T,P)` up to `budget` worlds.
    pub fn compile(theory: Theory, p: Formula, budget: usize) -> Result<Self, WorldBudgetExceeded> {
        let worlds = possible_worlds(&theory, &p, budget).ok_or(WorldBudgetExceeded { budget })?;
        let world_formulas = worlds
            .iter()
            .map(|w| {
                Formula::and_all(
                    w.iter()
                        .map(|&i| theory.formulas[i].clone())
                        .chain([p.clone()]),
                )
            })
            .collect();
        Ok(Self {
            theory,
            p,
            world_formulas,
        })
    }

    /// Number of possible worlds.
    pub fn world_count(&self) -> usize {
        self.world_formulas.len()
    }

    /// `T *GFUV P ⊨ Q`: consequence in every world.
    pub fn entails(&self, q: &Formula) -> bool {
        self.world_formulas.iter().all(|w| revkb_sat::entails(w, q))
    }

    /// The explicit representation `(⋁ ⋀T') ∧ P` and its size — what
    /// Theorem 3.1 says cannot stay polynomial.
    pub fn explicit_representation(&self) -> Formula {
        Formula::or_all(self.world_formulas.iter().cloned())
    }

    /// The inputs.
    pub fn inputs(&self) -> (&Theory, &Formula) {
        (&self.theory, &self.p)
    }
}

/// A WIDTIO-revised knowledge base: compiled once, always compact.
#[derive(Debug, Clone)]
pub struct WidtioKb {
    kept: Theory,
}

impl WidtioKb {
    /// Compile `T *wid P` (the intersection of all possible worlds,
    /// plus `P`).
    pub fn compile(theory: &Theory, p: &Formula) -> Self {
        Self {
            kept: widtio(theory, p),
        }
    }

    /// The compiled sub-theory.
    pub fn theory(&self) -> &Theory {
        &self.kept
    }

    /// `T *wid P ⊨ Q`.
    pub fn entails(&self, q: &Formula) -> bool {
        revkb_sat::entails(&self.kept.conjunction(), q)
    }

    /// Size of the compiled base — always `≤ |T| + |P|`.
    pub fn size(&self) -> usize {
        self.kept.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula_based::gfuv_entails;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn gfuv_kb_matches_direct_entailment() {
        let t = Theory::new([v(0), v(0).implies(v(1)), v(2)]);
        let p = v(1).not();
        let kb = GfuvKb::compile(t.clone(), p.clone(), 100).unwrap();
        for q in [v(0), v(1), v(2), v(0).or(v(1)), v(2).and(v(1).not())] {
            assert_eq!(kb.entails(&q), gfuv_entails(&t, &p, &q), "query {q:?}");
        }
    }

    #[test]
    fn gfuv_budget_exceeded_reports() {
        let ex = crate::formula_based::Theory::new((0..8u32).map(v));
        let p = Formula::and_all((0..4u32).map(|i| v(i).xor(v(4 + i))));
        let err = GfuvKb::compile(ex, p, 4).unwrap_err();
        assert_eq!(err.budget, 4);
        assert!(err.to_string().contains("Theorem 3.1"));
    }

    #[test]
    fn widtio_kb_compact_and_correct() {
        let t = Theory::new([v(0), v(0).implies(v(1))]);
        let p = v(1).not();
        let kb = WidtioKb::compile(&t, &p);
        assert!(kb.size() <= t.size() + p.size());
        // WIDTIO drops both conflicting formulas: only ¬x1 remains.
        assert!(kb.entails(&v(1).not()));
        assert!(!kb.entails(&v(0)));
    }

    #[test]
    fn explicit_representation_counts() {
        let t = Theory::new([v(0), v(1)]);
        let p = v(0).not().or(v(1).not());
        let kb = GfuvKb::compile(t, p, 100).unwrap();
        assert_eq!(kb.world_count(), 2);
        let explicit = kb.explicit_representation();
        assert!(revkb_sat::satisfiable(&explicit));
    }
}
