//! Belief contraction, derived from revision through the **Harper
//! identity** — an extension rounding out the AGM picture the paper's
//! introduction starts from \[1, 12\].
//!
//! ```text
//! T ÷ P  =  T ∨ (T * ¬P)        (models: M(T) ∪ M(T * ¬P))
//! ```
//!
//! Contraction retracts `P` from the belief set without adding
//! anything new. When the underlying `*` is an AGM revision (Dalal,
//! Satoh, …), the derived `÷` satisfies the core contraction
//! postulates — inclusion, vacuity, success and (for the
//! Levi/Harper-compatible operators) recovery — which the tests check
//! against the semantic engine.

use crate::model_set::ModelSet;
use crate::semantic::{revise_on, ModelBasedOp};
use revkb_logic::{Alphabet, Formula};

/// `M(T ÷ P)` by the Harper identity, over the union alphabet.
///
/// Degenerate convention: contracting by a tautology cannot succeed
/// (nothing satisfies `¬P`); the identity then yields `M(T)` itself,
/// which matches AGM (tautologies are never retractable).
pub fn contract_on(op: ModelBasedOp, alphabet: &Alphabet, t: &Formula, p: &Formula) -> ModelSet {
    let t_models = ModelSet::of_formula(alphabet.clone(), t);
    let not_p = p.clone().not();
    if !revkb_sat::satisfiable(&not_p) {
        return t_models;
    }
    let revised = revise_on(op, alphabet, t, &not_p);
    ModelSet::new(
        alphabet.clone(),
        t_models
            .masks()
            .iter()
            .chain(revised.masks())
            .copied()
            .collect(),
    )
}

/// `M(T ÷ P)` over `V(T) ∪ V(P)`.
pub fn contract(op: ModelBasedOp, t: &Formula, p: &Formula) -> ModelSet {
    let alphabet = Alphabet::of_formulas([t, p]);
    contract_on(op, &alphabet, t, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Inclusion: contraction only weakens — `M(T) ⊆ M(T ÷ P)`.
    #[test]
    fn inclusion() {
        let t = v(0).and(v(1)).and(v(2).implies(v(0)));
        let p = v(1);
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_models = ModelSet::of_formula(alpha.clone(), &t);
        for op in ModelBasedOp::ALL {
            let contracted = contract_on(op, &alpha, &t, &p);
            assert!(t_models.is_subset_of(&contracted), "{}", op.name());
        }
    }

    /// Success: after contracting a non-tautology, `P` is no longer
    /// entailed.
    #[test]
    fn success() {
        let t = v(0).and(v(1));
        let p = v(1);
        for op in ModelBasedOp::ALL {
            let contracted = contract(op, &t, &p);
            assert!(!contracted.entails(&p), "{} still entails P", op.name());
        }
    }

    /// Vacuity: contracting something not believed changes nothing.
    #[test]
    fn vacuity() {
        let t = v(0); // does not entail v1
        let p = v(1);
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_models = ModelSet::of_formula(alpha.clone(), &t);
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            // T ∧ ¬P is consistent, so T * ¬P ⊆ T's weakening: the
            // union is exactly M(T) for revision-style operators.
            let contracted = contract_on(op, &alpha, &t, &p);
            assert_eq!(contracted, t_models, "{}", op.name());
        }
    }

    /// Recovery: `(T ÷ P) ∧ P ⊨ T` when `*` is an AGM revision.
    #[test]
    fn recovery_for_revision_operators() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(1).or(v(2));
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_models = ModelSet::of_formula(alpha.clone(), &t);
        let p_models = ModelSet::of_formula(alpha.clone(), &p);
        for op in [
            ModelBasedOp::Dalal,
            ModelBasedOp::Satoh,
            ModelBasedOp::Borgida,
        ] {
            let contracted = contract_on(op, &alpha, &t, &p);
            let back = contracted.intersect(&p_models);
            assert!(
                back.is_subset_of(&t_models),
                "{} violates recovery",
                op.name()
            );
        }
    }

    /// Tautologies cannot be contracted: the result is `T` unchanged.
    #[test]
    fn tautology_contraction_is_identity() {
        let t = v(0).and(v(1));
        let taut = v(0).or(v(0).not());
        let alpha = Alphabet::of_formulas([&t, &taut]);
        let t_models = ModelSet::of_formula(alpha.clone(), &t);
        for op in ModelBasedOp::ALL {
            assert_eq!(contract_on(op, &alpha, &t, &taut), t_models);
        }
    }

    /// Levi identity round trip: re-revising the contraction with `P`
    /// recovers exactly `T` for AGM operators on this instance.
    #[test]
    fn levi_round_trip() {
        let t = v(0).and(v(1));
        let p = v(1);
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_models = ModelSet::of_formula(alpha.clone(), &t);
        for op in [ModelBasedOp::Dalal, ModelBasedOp::Satoh] {
            let contracted = contract_on(op, &alpha, &t, &p);
            // Levi: T * P = (T ÷ ¬P) ∧ P. Here: contract ¬... use the
            // direct check: (T ÷ P) revised with P gives back T.
            let back = revise_on(op, &alpha, &contracted.to_dnf(), &p);
            assert_eq!(back, t_models, "{}", op.name());
        }
    }
}
