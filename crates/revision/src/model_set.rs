//! Dense model sets: the result type of the semantic (ground-truth)
//! revision engine.
//!
//! A [`ModelSet`] is a set of interpretations over a fixed
//! [`Alphabet`], stored as sorted `u64` bitmasks. The semantic engine
//! computes `M(T * P)` for every operator by explicit enumeration;
//! everything else in the system (compact constructions, the
//! query-answering engine) is validated against these sets.

use revkb_logic::{Alphabet, Formula, Interpretation, Var};

/// A set of models over a fixed alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSet {
    alphabet: Alphabet,
    /// Sorted, deduplicated masks.
    models: Vec<u64>,
}

impl ModelSet {
    /// Build from an alphabet and a list of masks (sorted/deduped here).
    pub fn new(alphabet: Alphabet, mut models: Vec<u64>) -> Self {
        models.sort_unstable();
        models.dedup();
        Self { alphabet, models }
    }

    /// The models of `f` over `alphabet`.
    pub fn of_formula(alphabet: Alphabet, f: &Formula) -> Self {
        let models = alphabet.models(f);
        Self { alphabet, models }
    }

    /// The underlying alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The masks, sorted.
    pub fn masks(&self) -> &[u64] {
        &self.models
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the set is empty (an unsatisfiable result).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Membership of a mask.
    pub fn contains_mask(&self, mask: u64) -> bool {
        self.models.binary_search(&mask).is_ok()
    }

    /// Membership of an interpretation (the paper's model checking
    /// `M ⊨ T * P`). Letters outside the alphabet must be absent.
    pub fn contains(&self, m: &Interpretation) -> bool {
        if m.iter().any(|v| !self.alphabet.contains(*v)) {
            return false;
        }
        self.contains_mask(self.alphabet.interpretation_to_mask(m))
    }

    /// The models as interpretations.
    pub fn interpretations(&self) -> Vec<Interpretation> {
        self.models
            .iter()
            .map(|&m| self.alphabet.mask_to_interpretation(m))
            .collect()
    }

    /// Does every model satisfy `q`? (`T * P ⊨ Q`; `q` must use only
    /// letters of the alphabet — foreign letters read as false.)
    pub fn entails(&self, q: &Formula) -> bool {
        self.models.iter().all(|&m| self.alphabet.eval_mask(q, m))
    }

    /// Subset relation against another set over the same alphabet.
    ///
    /// # Panics
    /// If the alphabets differ.
    pub fn is_subset_of(&self, other: &ModelSet) -> bool {
        assert_eq!(
            self.alphabet, other.alphabet,
            "model sets over different alphabets"
        );
        self.models.iter().all(|&m| other.contains_mask(m))
    }

    /// Exact canonical formula: the disjunction of the models as full
    /// minterms (exponential; ground truth for small alphabets).
    pub fn to_dnf(&self) -> Formula {
        Formula::or_all(self.models.iter().map(|&m| {
            Formula::and_all(
                self.alphabet
                    .vars()
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| Formula::lit(v, m >> i & 1 == 1)),
            )
        }))
    }

    /// Intersection with another set over the same alphabet.
    pub fn intersect(&self, other: &ModelSet) -> ModelSet {
        assert_eq!(self.alphabet, other.alphabet);
        let models = self
            .models
            .iter()
            .copied()
            .filter(|&m| other.contains_mask(m))
            .collect();
        ModelSet::new(self.alphabet.clone(), models)
    }
}

/// The union alphabet `V(T) ∪ V(P)` over which model-based operators
/// are defined, in `Var` order.
pub fn revision_alphabet(t: &Formula, p: &Formula) -> Alphabet {
    Alphabet::of_formulas([t, p])
}

/// The union alphabet of a theory and a sequence of revisions.
pub fn revision_alphabet_seq(t: &Formula, ps: &[Formula]) -> Alphabet {
    Alphabet::of_formulas(std::iter::once(t).chain(ps))
}

/// Like [`revision_alphabet`] but with extra letters forced into the
/// alphabet (the paper sometimes fixes the alphabet up front).
pub fn alphabet_with(t: &Formula, p: &Formula, extra: &[Var]) -> Alphabet {
    let mut vars = t.vars();
    p.collect_vars(&mut vars);
    vars.extend(extra.iter().copied());
    Alphabet::new(vars.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn construction_and_membership() {
        let alpha = Alphabet::new(vec![Var(0), Var(1)]);
        let ms = ModelSet::of_formula(alpha, &v(0).or(v(1)));
        assert_eq!(ms.len(), 3);
        assert!(ms.contains_mask(0b01));
        assert!(!ms.contains_mask(0b00));
        let interp: Interpretation = [Var(1)].into_iter().collect();
        assert!(ms.contains(&interp));
    }

    #[test]
    fn contains_rejects_foreign_letters() {
        let alpha = Alphabet::new(vec![Var(0)]);
        let ms = ModelSet::of_formula(alpha, &v(0));
        let foreign: Interpretation = [Var(0), Var(9)].into_iter().collect();
        assert!(!ms.contains(&foreign));
    }

    #[test]
    fn entailment() {
        let alpha = Alphabet::new(vec![Var(0), Var(1)]);
        let ms = ModelSet::of_formula(alpha, &v(0).and(v(1)));
        assert!(ms.entails(&v(0)));
        assert!(ms.entails(&v(1)));
        assert!(!ms.entails(&v(0).not()));
        // Empty set entails everything.
        let empty = ModelSet::new(Alphabet::new(vec![Var(0)]), vec![]);
        assert!(empty.entails(&Formula::False));
    }

    #[test]
    fn dnf_roundtrip() {
        let alpha = Alphabet::new(vec![Var(0), Var(1), Var(2)]);
        let f = v(0).xor(v(1)).or(v(2));
        let ms = ModelSet::of_formula(alpha.clone(), &f);
        let dnf = ms.to_dnf();
        let ms2 = ModelSet::of_formula(alpha, &dnf);
        assert_eq!(ms, ms2);
    }

    #[test]
    fn subset_and_intersect() {
        let alpha = Alphabet::new(vec![Var(0), Var(1)]);
        let big = ModelSet::of_formula(alpha.clone(), &v(0).or(v(1)));
        let small = ModelSet::of_formula(alpha.clone(), &v(0).and(v(1)));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        let inter = big.intersect(&small);
        assert_eq!(inter, small);
    }

    #[test]
    fn dedup_on_new() {
        let alpha = Alphabet::new(vec![Var(0)]);
        let ms = ModelSet::new(alpha, vec![1, 0, 1]);
        assert_eq!(ms.masks(), &[0, 1]);
    }
}
