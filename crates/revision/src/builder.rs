//! The typed front door to compilation: [`ReviseBuilder`].
//!
//! The workspace grew its entry points one at a time —
//! [`RevisedKb::compile`], [`RevisedKb::compile_via_bdd`],
//! [`DelayedKb::new`], plus the `REVKB_THREADS` / `REVKB_TRACE` /
//! `REVKB_CACHE_CAP` environment knobs read at scattered call sites.
//! The builder gathers all of it behind typed options with one rule:
//! **an explicit setter wins; an unset option falls back to the
//! `REVKB_*` environment variable; an unset variable falls back to the
//! documented default.** The old free functions remain as thin,
//! supported shims — nothing is deprecated silently.
//!
//! ```
//! use revkb_revision::{ModelBasedOp, ReviseBuilder};
//! use revkb_logic::{Formula, Var};
//!
//! let t = Formula::var(Var(0)).or(Formula::var(Var(1)));
//! let p = Formula::var(Var(0)).not();
//! let kb = ReviseBuilder::new(ModelBasedOp::Dalal)
//!     .threads(2)
//!     .compile(&t, &p)
//!     .unwrap();
//! assert!(kb.entails(&Formula::var(Var(1))));
//! ```

use crate::advice::{advise, OperatorKind, Profile};
use crate::api::Engine;
use crate::compact::CompactRep;
use crate::engine::{DelayedKb, RevisedKb};
use crate::error::Error;
use crate::semantic::ModelBasedOp;
use revkb_logic::Formula;
use revkb_obs::TraceMode;
use revkb_sat::PoolConfig;

/// Environment variable giving the default compiled-artifact cache
/// capacity (see [`ReviseBuilder::cache_capacity`] and the
/// `revkb-server` registry).
pub const CACHE_CAP_ENV: &str = "REVKB_CACHE_CAP";

/// Default compiled-artifact cache capacity when neither the builder
/// option nor [`CACHE_CAP_ENV`] says otherwise.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Which compilation pipeline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The construction Table 1 recommends per operator
    /// ([`RevisedKb::compile`] / [`RevisedKb::compile_iterated`]).
    #[default]
    Direct,
    /// The BDD pipeline ([`RevisedKb::compile_via_bdd`]): exact for
    /// any operator but needs an enumerable total alphabet.
    Bdd,
}

impl Backend {
    /// Wire/CLI tag of the backend.
    pub fn tag(self) -> &'static str {
        match self {
            Backend::Direct => "direct",
            Backend::Bdd => "bdd",
        }
    }

    /// Parse a wire/CLI tag.
    pub fn from_tag(tag: &str) -> Option<Backend> {
        match tag.to_ascii_lowercase().as_str() {
            "direct" => Some(Backend::Direct),
            "bdd" => Some(Backend::Bdd),
            _ => None,
        }
    }
}

/// Typed, env-aware configuration for compiling revised knowledge
/// bases. See the module docs for the precedence rule.
#[derive(Debug, Clone)]
pub struct ReviseBuilder {
    op: ModelBasedOp,
    backend: Backend,
    profile: Option<Profile>,
    threads: Option<usize>,
    trace: Option<TraceMode>,
    cache_capacity: Option<usize>,
}

impl ReviseBuilder {
    /// A builder for the given operator with every option at its
    /// environment-aware default.
    pub fn new(op: ModelBasedOp) -> Self {
        Self {
            op,
            backend: Backend::default(),
            profile: None,
            threads: None,
            trace: None,
            cache_capacity: None,
        }
    }

    /// Choose the compilation pipeline (default: [`Backend::Direct`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Declare the usage profile. When set, [`ReviseBuilder::compile`]
    /// first consults Table 1 / Table 2 ([`advise`]) and refuses with
    /// [`Error::NotCompactable`] if the paper proves no compact
    /// representation can exist for this operator under the profile —
    /// failing fast instead of building an exponential artefact.
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Worker threads for batch query answering (default: the
    /// `REVKB_THREADS` variable, then available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Telemetry mode, applied process-wide at compile time (default:
    /// leave whatever `REVKB_TRACE` selected untouched).
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.trace = Some(mode);
        self
    }

    /// Compiled-artifact cache capacity for registries built from this
    /// builder (default: `REVKB_CACHE_CAP`, then
    /// [`DEFAULT_CACHE_CAPACITY`]). Compilation itself does not cache;
    /// the `revkb-server` registry reads this knob.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// The operator this builder compiles for.
    pub fn operator(&self) -> ModelBasedOp {
        self.op
    }

    /// The effective worker-thread count after applying the precedence
    /// rule (explicit option → `REVKB_THREADS` → parallelism).
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(revkb_sat::default_threads)
    }

    /// The effective artifact-cache capacity (explicit option →
    /// `REVKB_CACHE_CAP` → [`DEFAULT_CACHE_CAPACITY`]).
    pub fn effective_cache_capacity(&self) -> usize {
        if let Some(cap) = self.cache_capacity {
            return cap;
        }
        if let Ok(raw) = std::env::var(CACHE_CAP_ENV) {
            if let Ok(cap) = raw.trim().parse::<usize>() {
                return cap;
            }
        }
        DEFAULT_CACHE_CAPACITY
    }

    /// The Table 1 / Table 2 verdict for this builder's operator and
    /// profile, if a profile was declared.
    pub fn advice(&self) -> Option<crate::advice::Advice> {
        self.profile
            .map(|profile| advise(OperatorKind::ModelBased(self.op), profile))
    }

    fn check_profile(&self) -> Result<(), Error> {
        if let Some(crate::advice::Advice::NotCompactable {
            reference,
            consequence,
        }) = self.advice()
        {
            return Err(Error::NotCompactable {
                reference,
                consequence,
            });
        }
        Ok(())
    }

    fn apply_trace(&self) {
        if let Some(mode) = self.trace {
            revkb_obs::set_mode(mode);
        }
    }

    fn configure(&self, kb: &RevisedKb) {
        if let Some(threads) = self.threads {
            kb.set_pool_config(PoolConfig::with_threads(threads));
        }
    }

    /// Compile `T * P` (step 1 of the paper's pipeline) with every
    /// option applied. Thin wrapper over [`RevisedKb::compile`] /
    /// [`RevisedKb::compile_via_bdd`].
    pub fn compile(&self, t: &Formula, p: &Formula) -> Result<RevisedKb, Error> {
        self.check_profile()?;
        self.apply_trace();
        let kb = match self.backend {
            Backend::Direct => RevisedKb::compile(self.op, t, p)?,
            Backend::Bdd => RevisedKb::compile_via_bdd(self.op, t, p)?,
        };
        self.configure(&kb);
        Ok(kb)
    }

    /// Compile the iterated revision `T * P¹ * … * Pᵐ`. The BDD
    /// backend has no iterated pipeline; it applies to single
    /// revisions only, so this always uses the direct constructions.
    pub fn compile_iterated(&self, t: &Formula, ps: &[Formula]) -> Result<RevisedKb, Error> {
        self.check_profile()?;
        self.apply_trace();
        let kb = RevisedKb::compile_iterated(self.op, t, ps)?;
        self.configure(&kb);
        Ok(kb)
    }

    /// A delayed-incorporation base (compile at first query) with this
    /// builder's operator.
    pub fn delayed(&self, t: Formula) -> DelayedKb {
        self.apply_trace();
        DelayedKb::new(self.op, t)
    }

    /// Build a boxed [`Engine`] for `T` revised by `ps` — the uniform
    /// artefact the `revkb-server` registry stores. An empty `ps`
    /// yields the unrevised base itself (a logically-equivalent
    /// [`CompactRep`] of `T`), so a freshly loaded knowledge base is
    /// queryable before its first revision.
    pub fn engine(&self, t: &Formula, ps: &[Formula]) -> Result<Box<dyn Engine + Send>, Error> {
        match ps {
            [] => {
                let base: Vec<_> = t.vars().into_iter().collect();
                let rep = CompactRep::logical(t.clone(), base);
                if let Some(threads) = self.threads {
                    rep.set_pool_config(PoolConfig::with_threads(threads));
                }
                Ok(Box::new(rep))
            }
            [p] if self.backend == Backend::Bdd => Ok(Box::new(self.compile(t, p)?)),
            ps => Ok(Box::new(self.compile_iterated(t, ps)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn builder_matches_free_function_shims() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let built = ReviseBuilder::new(op).compile(&t, &p).unwrap();
            let shim = RevisedKb::compile(op, &t, &p).unwrap();
            for q in [v(2), v(0).or(v(1))] {
                assert_eq!(built.entails(&q), shim.entails(&q), "{}", op.name());
            }
        }
    }

    #[test]
    fn threads_reach_the_pool() {
        let t = v(0).and(v(1));
        let p = v(0).not();
        let kb = ReviseBuilder::new(ModelBasedOp::Dalal)
            .threads(2)
            .compile(&t, &p)
            .unwrap();
        kb.entails_batch(&[v(0), v(1), v(0).or(v(1))]);
        assert_eq!(kb.pool_stats().unwrap().threads, 2);
    }

    #[test]
    fn hopeless_profile_is_refused() {
        // Winslett, unbounded P, no new letters: Table 1 says NO.
        let profile = Profile {
            bounded_p: false,
            allow_new_letters: false,
            iterated: false,
        };
        let err = ReviseBuilder::new(ModelBasedOp::Winslett)
            .profile(profile)
            .compile(&v(0), &v(1).not())
            .unwrap_err();
        assert_eq!(err.code(), "not_compactable");
        // Dalal under the new-letters profile is fine.
        let ok_profile = Profile {
            bounded_p: false,
            allow_new_letters: true,
            iterated: false,
        };
        assert!(ReviseBuilder::new(ModelBasedOp::Dalal)
            .profile(ok_profile)
            .compile(&v(0), &v(1).not())
            .is_ok());
    }

    #[test]
    fn bdd_backend_agrees_with_direct() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let direct = ReviseBuilder::new(op).compile(&t, &p).unwrap();
            let bdd = ReviseBuilder::new(op)
                .backend(Backend::Bdd)
                .compile(&t, &p)
                .unwrap();
            for q in [v(0), v(1), v(2), v(0).or(v(2))] {
                assert_eq!(
                    direct.entails(&q),
                    bdd.entails(&q),
                    "{} backend divergence",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn engine_with_no_revisions_is_the_base() {
        let t = v(0).and(v(1));
        let mut engine = ReviseBuilder::new(ModelBasedOp::Dalal)
            .engine(&t, &[])
            .unwrap();
        assert!(engine.try_entails(&v(0)).unwrap());
        assert!(!engine.try_entails(&v(0).not()).unwrap());
        assert_eq!(
            engine.try_entails(&v(9)).unwrap_err().code(),
            "out_of_alphabet"
        );
    }

    #[test]
    fn effective_cache_capacity_defaults() {
        let b = ReviseBuilder::new(ModelBasedOp::Dalal);
        // Explicit wins over everything.
        assert_eq!(b.clone().cache_capacity(3).effective_cache_capacity(), 3);
        // Without the env var the documented default applies. (The
        // env-var path is covered by the server tests, which own the
        // process environment.)
        if std::env::var(CACHE_CAP_ENV).is_err() {
            assert_eq!(b.effective_cache_capacity(), DEFAULT_CACHE_CAPACITY);
        }
    }

    #[test]
    fn backend_tags_round_trip() {
        for backend in [Backend::Direct, Backend::Bdd] {
            assert_eq!(Backend::from_tag(backend.tag()), Some(backend));
        }
        assert_eq!(Backend::from_tag("qbf"), None);
    }
}
