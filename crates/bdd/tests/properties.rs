//! Property tests for the ROBDD engine: the Boolean algebra of
//! [`BddManager`] operations must agree with formula semantics, and
//! canonicity must identify equivalent formulas.

use proptest::prelude::*;
use revkb_bdd::{to_formula_definitional, to_formula_shannon, BddManager, FALSE, TRUE};
use revkb_logic::{tt_equivalent, Alphabet, CountingSupply, Formula, Var};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        4 => (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Formula::lit(Var(v), pos)),
        1 => Just(Formula::True),
        1 => Just(Formula::False),
    ]
    .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Canonicity: equivalent formulas land on the same node; only
    /// equivalent formulas do.
    #[test]
    fn canonicity(a in formula_strategy(5, 3), b in formula_strategy(5, 3)) {
        let mut mgr = BddManager::with_order((0..5).map(Var));
        let na = mgr.from_formula(&a);
        let nb = mgr.from_formula(&b);
        prop_assert_eq!(na == nb, tt_equivalent(&a, &b));
    }

    /// Boolean algebra: BDD ops match formula ops pointwise.
    #[test]
    fn algebra_matches_semantics(a in formula_strategy(4, 3), b in formula_strategy(4, 3)) {
        let alpha = Alphabet::new((0..4).map(Var).collect());
        let mut mgr = BddManager::with_order((0..4).map(Var));
        let na = mgr.from_formula(&a);
        let nb = mgr.from_formula(&b);
        let and = mgr.and(na, nb);
        let or = mgr.or(na, nb);
        let xor = mgr.xor(na, nb);
        let not_a = mgr.not(na);
        let ite = mgr.ite(na, nb, not_a);
        for mask in 0..16u64 {
            let m = alpha.mask_to_interpretation(mask);
            let (va, vb) = (alpha.eval_mask(&a, mask), alpha.eval_mask(&b, mask));
            prop_assert_eq!(mgr.model_check(and, &m), va && vb);
            prop_assert_eq!(mgr.model_check(or, &m), va || vb);
            prop_assert_eq!(mgr.model_check(xor, &m), va ^ vb);
            prop_assert_eq!(mgr.model_check(not_a, &m), !va);
            prop_assert_eq!(mgr.model_check(ite, &m), if va { vb } else { !va });
        }
    }

    /// Quantification: ∃x.f and ∀x.f match the cofactor semantics.
    #[test]
    fn quantification(f in formula_strategy(4, 3), idx in 0u32..4) {
        let mut mgr = BddManager::with_order((0..4).map(Var));
        let n = mgr.from_formula(&f);
        let v = Var(idx);
        let hi = mgr.restrict(n, v, true);
        let lo = mgr.restrict(n, v, false);
        let exists = mgr.exists(n, &[v]);
        let forall = mgr.forall(n, &[v]);
        let or = mgr.or(hi, lo);
        let and = mgr.and(hi, lo);
        prop_assert_eq!(exists, or);
        prop_assert_eq!(forall, and);
    }

    /// Model counting equals enumeration; any_model is a model.
    #[test]
    fn counting_and_witnesses(f in formula_strategy(5, 3)) {
        let alpha = Alphabet::new((0..5).map(Var).collect());
        let mut mgr = BddManager::with_order((0..5).map(Var));
        let n = mgr.from_formula(&f);
        prop_assert_eq!(mgr.count_models(n), alpha.models(&f).len() as u128);
        match mgr.any_model(n) {
            Some(m) => prop_assert!(f.eval(&m)),
            None => prop_assert_eq!(n, FALSE),
        }
        if n == TRUE {
            prop_assert_eq!(mgr.count_models(n), 32);
        }
    }

    /// Both extraction routes reproduce the function.
    #[test]
    fn extraction_roundtrips(f in formula_strategy(4, 3)) {
        let mut mgr = BddManager::with_order((0..4).map(Var));
        let n = mgr.from_formula(&f);
        let shannon = to_formula_shannon(&mgr, n);
        prop_assert!(tt_equivalent(&f, &shannon));
        let mut supply = CountingSupply::new(100);
        let defs = to_formula_definitional(&mgr, n, &mut supply);
        // Query equivalence over the original letters. The projection
        // alphabet must contain every base letter even when f doesn't
        // mention it (free letters stay free on both sides).
        let base: Vec<Var> = (0..4).map(Var).collect();
        let mut union = defs.vars();
        f.collect_vars(&mut union);
        union.extend(base.iter().copied());
        let full = Alphabet::new(union.into_iter().collect());
        prop_assume!(full.len() <= 20);
        let base_alpha = Alphabet::new(base);
        let mut projected: Vec<u64> = full
            .models(&defs)
            .into_iter()
            .map(|m| full.project_mask(m, &base_alpha))
            .collect();
        projected.sort_unstable();
        projected.dedup();
        prop_assert_eq!(projected, base_alpha.models(&f));
    }
}
