//! Extraction of propositional formulas from BDDs.
//!
//! Two routes:
//!
//! - [`to_formula_shannon`]: structural Shannon expansion — logically
//!   equivalent, but sharing is lost, so the formula can be
//!   exponentially larger than the BDD.
//! - [`to_formula_definitional`]: one fresh letter per reachable node
//!   with its if-then-else definition — **linear in the BDD size** and
//!   *query-equivalent* over the original alphabet. This is the
//!   Section 7 bridge run backwards: a polynomial-size data structure
//!   with poly-time `ASK` yields a polynomial-size query-equivalent
//!   formula, which is why the paper's query-compactability lower
//!   bounds automatically apply to BDDs too.

use crate::manager::{BddManager, NodeId, FALSE, TRUE};
use revkb_logic::{Formula, Var, VarSupply};
use std::collections::HashMap;

/// Shannon-expansion extraction: logically equivalent, may blow up.
pub fn to_formula_shannon(mgr: &BddManager, node: NodeId) -> Formula {
    let mut memo: HashMap<NodeId, Formula> = HashMap::new();
    rec_shannon(mgr, node, &mut memo)
}

fn rec_shannon(mgr: &BddManager, node: NodeId, memo: &mut HashMap<NodeId, Formula>) -> Formula {
    if node == TRUE {
        return Formula::True;
    }
    if node == FALSE {
        return Formula::False;
    }
    if let Some(f) = memo.get(&node) {
        return f.clone();
    }
    let (v, lo, hi) = mgr.node_parts(node);
    let lo_f = rec_shannon(mgr, lo, memo);
    let hi_f = rec_shannon(mgr, hi, memo);
    let var = Formula::var(v);
    let f = var.clone().and(hi_f).or(var.not().and(lo_f));
    memo.insert(node, f.clone());
    f
}

/// Definitional extraction: returns a formula over the BDD's letters
/// plus one fresh letter per reachable internal node, of size linear
/// in the node count, query-equivalent to the BDD's function over the
/// original alphabet.
///
/// Shape: `⋀_nodes (w_n ≡ (xᵥ ? w_hi : w_lo)) ∧ w_root`, with the
/// terminals folded to constants.
pub fn to_formula_definitional(
    mgr: &BddManager,
    node: NodeId,
    supply: &mut impl VarSupply,
) -> Formula {
    let _span = revkb_obs::span("bdd.extract");
    if node == TRUE {
        return Formula::True;
    }
    if node == FALSE {
        return Formula::False;
    }
    // Assign a definition letter per reachable internal node.
    let mut order: Vec<NodeId> = Vec::new();
    let mut seen: HashMap<NodeId, Var> = HashMap::new();
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        if n == TRUE || n == FALSE || seen.contains_key(&n) {
            continue;
        }
        seen.insert(n, supply.fresh_var());
        order.push(n);
        let (_, lo, hi) = mgr.node_parts(n);
        stack.push(lo);
        stack.push(hi);
    }
    let wire = |n: NodeId, seen: &HashMap<NodeId, Var>| -> Formula {
        match n {
            TRUE => Formula::True,
            FALSE => Formula::False,
            other => Formula::var(seen[&other]),
        }
    };
    let defs = order.iter().map(|&n| {
        let (v, lo, hi) = mgr.node_parts(n);
        let var = Formula::var(v);
        let body = var
            .clone()
            .and(wire(hi, &seen))
            .or(var.not().and(wire(lo, &seen)));
        Formula::var(seen[&n]).iff(body)
    });
    Formula::and_all(defs.chain([wire(node, &seen)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::{Alphabet, CountingSupply};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn shannon_roundtrip() {
        let mut mgr = BddManager::new();
        for f in [
            v(0).xor(v(1)).or(v(2)),
            v(0).implies(v(1)).iff(v(2)),
            Formula::True,
            v(0).and(v(0).not()),
        ] {
            let node = mgr.from_formula(&f);
            let g = to_formula_shannon(&mgr, node);
            assert!(revkb_logic::tt_equivalent(&f, &g), "roundtrip of {f:?}");
        }
    }

    #[test]
    fn definitional_is_query_equivalent() {
        let f = v(0).xor(v(1)).or(v(2).and(v(3)));
        let mut mgr = BddManager::new();
        let node = mgr.from_formula(&f);
        let mut supply = CountingSupply::new(100);
        let g = to_formula_definitional(&mgr, node, &mut supply);
        // Projection of M(g) onto the original letters = M(f).
        let base: Vec<Var> = f.vars().into_iter().collect();
        let full = Alphabet::of_formulas([&g, &f]);
        let base_alpha = Alphabet::new(base.clone());
        let mut projected: Vec<u64> = full
            .models(&g)
            .into_iter()
            .map(|m| full.project_mask(m, &base_alpha))
            .collect();
        projected.sort_unstable();
        projected.dedup();
        assert_eq!(projected, base_alpha.models(&f));
    }

    #[test]
    fn definitional_size_linear_in_nodes() {
        // A function whose BDD is small: the definitional form stays
        // proportional to the node count.
        let n = 10u32;
        let f = Formula::and_all((0..n).map(|i| v(i).or(v((i + 1) % n))));
        let mut mgr = BddManager::with_order((0..n).map(Var));
        let node = mgr.from_formula(&f);
        let nodes = mgr.size(node);
        let mut supply = CountingSupply::new(1000);
        let g = to_formula_definitional(&mgr, node, &mut supply);
        assert!(
            g.size() <= 8 * nodes,
            "definitional size {} not linear in {} nodes",
            g.size(),
            nodes
        );
    }

    #[test]
    fn terminals_extract_to_constants() {
        let mgr = BddManager::new();
        let mut supply = CountingSupply::new(0);
        assert_eq!(
            to_formula_definitional(&mgr, TRUE, &mut supply),
            Formula::True
        );
        assert_eq!(
            to_formula_definitional(&mgr, FALSE, &mut supply),
            Formula::False
        );
        assert_eq!(to_formula_shannon(&mgr, TRUE), Formula::True);
    }
}
