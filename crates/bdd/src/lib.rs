//! # revkb-bdd
//!
//! A reduced ordered BDD engine: the canonical "generic data structure
//! with polynomial-time model checking" of the paper's Section 7.
//! BDD node counts are the data-structure size measure `|D|` in the
//! Section 7 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod manager;

pub use extract::{to_formula_definitional, to_formula_shannon};
pub use manager::{BddManager, NodeId, FALSE, TRUE};
