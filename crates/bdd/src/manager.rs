//! The ROBDD manager: shared node store with a unique table and an
//! operation cache.
//!
//! Section 7 of the paper generalises (non-)compactability from
//! propositional formulas to *any* data structure admitting a
//! polynomial-time model-checking algorithm (`ASK`). Reduced ordered
//! BDDs are the canonical such structure: `ASK(D, M)` is a single
//! root-to-terminal walk. The revision experiments use BDD node counts
//! as the data-structure size measure.

use revkb_logic::{Formula, Interpretation, Var};
use std::collections::HashMap;

static APPLY_HITS: revkb_obs::Counter = revkb_obs::Counter::new("bdd.apply.cache_hits");
static APPLY_MISSES: revkb_obs::Counter = revkb_obs::Counter::new("bdd.apply.cache_misses");
static NODES_ALLOCATED: revkb_obs::Counter = revkb_obs::Counter::new("bdd.unique.nodes_allocated");
/// High-watermark of the unique-table size across all managers.
static UNIQUE_SIZE: revkb_obs::Gauge = revkb_obs::Gauge::new("bdd.unique.size");

/// A BDD node reference (index into the manager's node store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The `⊥` terminal.
pub const FALSE: NodeId = NodeId(0);
/// The `⊤` terminal.
pub const TRUE: NodeId = NodeId(1);

const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    /// Position of the decision variable in the manager's ordering.
    level: u32,
    /// Successor when the variable is false.
    low: NodeId,
    /// Successor when the variable is true.
    high: NodeId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheOp {
    And,
    Or,
    Xor,
    Ite,
    Exists,
    Compose,
}

/// A reduced ordered BDD manager.
///
/// The variable ordering is the order in which variables are first
/// introduced (or fixed up front with [`BddManager::with_order`]).
/// All [`NodeId`]s produced by one manager are canonical: two nodes are
/// semantically equal iff they are the same id.
///
/// ```
/// use revkb_bdd::BddManager;
/// use revkb_logic::{Formula, Var};
/// let mut mgr = BddManager::new();
/// let a = mgr.from_formula(&Formula::var(Var(0)).implies(Formula::var(Var(1))));
/// let b = mgr.from_formula(&Formula::var(Var(0)).not().or(Formula::var(Var(1))));
/// assert_eq!(a, b); // canonicity
/// ```
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    cache: HashMap<(CacheOp, NodeId, NodeId, NodeId), NodeId>,
    order: Vec<Var>,
    var_level: HashMap<Var, u32>,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// A manager with an empty ordering (variables interned on first
    /// use, in first-use order).
    pub fn new() -> Self {
        let nodes = vec![
            Node {
                level: TERMINAL_LEVEL,
                low: FALSE,
                high: FALSE,
            },
            Node {
                level: TERMINAL_LEVEL,
                low: TRUE,
                high: TRUE,
            },
        ];
        Self {
            nodes,
            unique: HashMap::new(),
            cache: HashMap::new(),
            order: Vec::new(),
            var_level: HashMap::new(),
        }
    }

    /// A manager with the given variable ordering fixed up front.
    pub fn with_order<I: IntoIterator<Item = Var>>(order: I) -> Self {
        let mut m = Self::new();
        for v in order {
            m.level_of(v);
        }
        m
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> usize {
        self.order.len()
    }

    /// The ordering (level → variable).
    pub fn ordering(&self) -> &[Var] {
        &self.order
    }

    /// Level of `v`, interning it at the end of the order if new.
    pub fn level_of(&mut self, v: Var) -> u32 {
        if let Some(&l) = self.var_level.get(&v) {
            return l;
        }
        let l = self.order.len() as u32;
        self.order.push(v);
        self.var_level.insert(v, l);
        l
    }

    /// The variable at `level`.
    pub fn var_at(&self, level: u32) -> Var {
        self.order[level as usize]
    }

    fn mk(&mut self, level: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { level, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, id);
        NODES_ALLOCATED.inc();
        UNIQUE_SIZE.set_max(self.nodes.len() as u64);
        id
    }

    /// Operation-cache lookup with hit/miss telemetry.
    fn cache_get(&self, key: &(CacheOp, NodeId, NodeId, NodeId)) -> Option<NodeId> {
        match self.cache.get(key) {
            Some(&r) => {
                APPLY_HITS.inc();
                Some(r)
            }
            None => {
                APPLY_MISSES.inc();
                None
            }
        }
    }

    /// The BDD for the single variable `v`.
    pub fn var(&mut self, v: Var) -> NodeId {
        let level = self.level_of(v);
        self.mk(level, FALSE, TRUE)
    }

    /// The BDD for the literal `v` / `¬v`.
    pub fn literal(&mut self, v: Var, positive: bool) -> NodeId {
        let level = self.level_of(v);
        if positive {
            self.mk(level, FALSE, TRUE)
        } else {
            self.mk(level, TRUE, FALSE)
        }
    }

    fn level(&self, id: NodeId) -> u32 {
        self.nodes[id.0 as usize].level
    }

    fn low(&self, id: NodeId) -> NodeId {
        self.nodes[id.0 as usize].low
    }

    fn high(&self, id: NodeId) -> NodeId {
        self.nodes[id.0 as usize].high
    }

    /// Negation `¬f`.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, FALSE, TRUE)
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f == FALSE || g == FALSE {
            return FALSE;
        }
        if f == TRUE {
            return g;
        }
        if g == TRUE {
            return f;
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache_get(&(CacheOp::And, a, b, FALSE)) {
            return r;
        }
        let (level, fl, fh, gl, gh) = self.cofactors(f, g);
        let low = self.and(fl, gl);
        let high = self.and(fh, gh);
        let r = self.mk(level, low, high);
        self.cache.insert((CacheOp::And, a, b, FALSE), r);
        r
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        if f == TRUE || g == TRUE {
            return TRUE;
        }
        if f == FALSE {
            return g;
        }
        if g == FALSE {
            return f;
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache_get(&(CacheOp::Or, a, b, FALSE)) {
            return r;
        }
        let (level, fl, fh, gl, gh) = self.cofactors(f, g);
        let low = self.or(fl, gl);
        let high = self.or(fh, gh);
        let r = self.mk(level, low, high);
        self.cache.insert((CacheOp::Or, a, b, FALSE), r);
        r
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return FALSE;
        }
        if f == FALSE {
            return g;
        }
        if g == FALSE {
            return f;
        }
        if f == TRUE {
            return self.not(g);
        }
        if g == TRUE {
            return self.not(f);
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache_get(&(CacheOp::Xor, a, b, FALSE)) {
            return r;
        }
        let (level, fl, fh, gl, gh) = self.cofactors(f, g);
        let low = self.xor(fl, gl);
        let high = self.xor(fh, gh);
        let r = self.mk(level, low, high);
        self.cache.insert((CacheOp::Xor, a, b, FALSE), r);
        r
    }

    /// Equivalence `f ≡ g`.
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// If-then-else `ite(f, g, h) = (f∧g) ∨ (¬f∧h)`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(r) = self.cache_get(&(CacheOp::Ite, f, g, h)) {
            return r;
        }
        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let (fl, fh) = self.cofactor_at(f, level);
        let (gl, gh) = self.cofactor_at(g, level);
        let (hl, hh) = self.cofactor_at(h, level);
        let low = self.ite(fl, gl, hl);
        let high = self.ite(fh, gh, hh);
        let r = self.mk(level, low, high);
        self.cache.insert((CacheOp::Ite, f, g, h), r);
        r
    }

    fn cofactor_at(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        if self.level(f) == level {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        }
    }

    fn cofactors(&self, f: NodeId, g: NodeId) -> (u32, NodeId, NodeId, NodeId, NodeId) {
        let level = self.level(f).min(self.level(g));
        let (fl, fh) = self.cofactor_at(f, level);
        let (gl, gh) = self.cofactor_at(g, level);
        (level, fl, fh, gl, gh)
    }

    /// Restrict: fix `v` to `value` in `f`.
    pub fn restrict(&mut self, f: NodeId, v: Var, value: bool) -> NodeId {
        let level = self.level_of(v);
        self.restrict_level(f, level, value)
    }

    fn restrict_level(&mut self, f: NodeId, level: u32, value: bool) -> NodeId {
        if self.level(f) > level {
            return f;
        }
        if self.level(f) == level {
            return if value { self.high(f) } else { self.low(f) };
        }
        // level(f) < target level: rebuild.
        let key = (
            CacheOp::Compose,
            f,
            NodeId(level),
            if value { TRUE } else { FALSE },
        );
        if let Some(r) = self.cache_get(&key) {
            return r;
        }
        let node_level = self.level(f);
        let (l0, h0) = (self.low(f), self.high(f));
        let low = self.restrict_level(l0, level, value);
        let high = self.restrict_level(h0, level, value);
        let r = self.mk(node_level, low, high);
        self.cache.insert(key, r);
        r
    }

    /// Existential quantification `∃vars. f`.
    pub fn exists(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.level_of(v)).collect();
        levels.sort_unstable();
        levels.dedup();
        self.exists_levels(f, &levels)
    }

    fn exists_levels(&mut self, f: NodeId, levels: &[u32]) -> NodeId {
        if f == TRUE || f == FALSE || levels.is_empty() {
            return f;
        }
        let flevel = self.level(f);
        // Drop quantified levels above (before) this node.
        let idx = levels.partition_point(|&l| l < flevel);
        let levels = &levels[idx..];
        if levels.is_empty() {
            return f;
        }
        // Cache on (f, first remaining level, count) — conservative key
        // using a synthetic node id for the level set is incorrect in
        // general, so cache only full suffix calls keyed by first level
        // and suffix length packed into NodeIds.
        let key = (
            CacheOp::Exists,
            f,
            NodeId(levels[0]),
            NodeId(levels.len() as u32),
        );
        if let Some(r) = self.cache_get(&key) {
            return r;
        }
        let (l0, h0) = (self.low(f), self.high(f));
        let r = if flevel == levels[0] {
            let low = self.exists_levels(l0, &levels[1..]);
            let high = self.exists_levels(h0, &levels[1..]);
            self.or(low, high)
        } else {
            let low = self.exists_levels(l0, levels);
            let high = self.exists_levels(h0, levels);
            self.mk(flevel, low, high)
        };
        self.cache.insert(key, r);
        r
    }

    /// Universal quantification `∀vars. f`.
    pub fn forall(&mut self, f: NodeId, vars: &[Var]) -> NodeId {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Composition `f[v/g]`: substitute the function `g` for `v`.
    pub fn compose(&mut self, f: NodeId, v: Var, g: NodeId) -> NodeId {
        let level = self.level_of(v);
        let f_high = self.restrict_level(f, level, true);
        let f_low = self.restrict_level(f, level, false);
        self.ite(g, f_high, f_low)
    }

    /// Build the BDD of a formula.
    pub fn from_formula(&mut self, f: &Formula) -> NodeId {
        match f {
            Formula::True => TRUE,
            Formula::False => FALSE,
            Formula::Var(v) => self.var(*v),
            Formula::Not(inner) => {
                let x = self.from_formula(inner);
                self.not(x)
            }
            Formula::And(fs) => {
                let mut acc = TRUE;
                for g in fs {
                    let x = self.from_formula(g);
                    acc = self.and(acc, x);
                    if acc == FALSE {
                        break;
                    }
                }
                acc
            }
            Formula::Or(fs) => {
                let mut acc = FALSE;
                for g in fs {
                    let x = self.from_formula(g);
                    acc = self.or(acc, x);
                    if acc == TRUE {
                        break;
                    }
                }
                acc
            }
            Formula::Implies(a, b) => {
                let x = self.from_formula(a);
                let y = self.from_formula(b);
                self.implies(x, y)
            }
            Formula::Iff(a, b) => {
                let x = self.from_formula(a);
                let y = self.from_formula(b);
                self.iff(x, y)
            }
            Formula::Xor(a, b) => {
                let x = self.from_formula(a);
                let y = self.from_formula(b);
                self.xor(x, y)
            }
        }
    }

    /// Model check `M ⊨ f` — the paper's `ASK(D, M)`, a single
    /// root-to-terminal walk (Definition 7.1's polynomial-time bound).
    pub fn model_check(&self, f: NodeId, m: &Interpretation) -> bool {
        let mut cur = f;
        while cur != TRUE && cur != FALSE {
            let v = self.var_at(self.level(cur));
            cur = if m.contains(&v) {
                self.high(cur)
            } else {
                self.low(cur)
            };
        }
        cur == TRUE
    }

    /// Number of distinct nodes reachable from `f` (including the
    /// terminals): the data-structure size `|D|` of Section 7.
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if n != TRUE && n != FALSE {
                stack.push(self.low(n));
                stack.push(self.high(n));
            }
        }
        seen.len()
    }

    /// Number of models of `f` over the manager's full ordering.
    pub fn count_models(&self, f: NodeId) -> u128 {
        let total_levels = self.order.len() as u32;
        let mut memo: HashMap<NodeId, u128> = HashMap::new();
        let c = self.count_rec(f, &mut memo);
        // Scale for variables above the root.
        let root_level = if f == TRUE || f == FALSE {
            total_levels
        } else {
            self.level(f)
        };
        c << root_level
    }

    fn count_rec(&self, f: NodeId, memo: &mut HashMap<NodeId, u128>) -> u128 {
        let total = self.order.len() as u32;
        if f == FALSE {
            return 0;
        }
        if f == TRUE {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let level = self.level(f);
        let count_child = |this: &Self, child: NodeId, memo: &mut HashMap<NodeId, u128>| {
            let child_level = if child == TRUE || child == FALSE {
                total
            } else {
                this.level(child)
            };
            let c = this.count_rec(child, memo);
            c << (child_level - level - 1)
        };
        let c = count_child(self, self.low(f), memo) + count_child(self, self.high(f), memo);
        memo.insert(f, c);
        c
    }

    /// One model of `f` (letters set true), or `None` if `f = ⊥`.
    pub fn any_model(&self, f: NodeId) -> Option<Interpretation> {
        if f == FALSE {
            return None;
        }
        let mut m = Interpretation::new();
        let mut cur = f;
        while cur != TRUE {
            let v = self.var_at(self.level(cur));
            if self.low(cur) != FALSE {
                cur = self.low(cur);
            } else {
                m.insert(v);
                cur = self.high(cur);
            }
        }
        Some(m)
    }

    /// All models of `f` over the full ordering, as interpretations.
    /// Exponential; for small managers.
    pub fn all_models(&self, f: NodeId) -> Vec<Interpretation> {
        let mut out = Vec::new();
        let mut partial = Vec::new();
        self.enum_rec(f, 0, &mut partial, &mut out);
        out
    }

    fn enum_rec(
        &self,
        f: NodeId,
        level: u32,
        partial: &mut Vec<Var>,
        out: &mut Vec<Interpretation>,
    ) {
        if f == FALSE {
            return;
        }
        let total = self.order.len() as u32;
        if level == total {
            debug_assert_eq!(f, TRUE);
            out.push(partial.iter().copied().collect());
            return;
        }
        let v = self.var_at(level);
        let (lo, hi) = if f != TRUE && self.level(f) == level {
            (self.low(f), self.high(f))
        } else {
            (f, f)
        };
        self.enum_rec(lo, level + 1, partial, out);
        partial.push(v);
        self.enum_rec(hi, level + 1, partial, out);
        partial.pop();
    }

    /// Total nodes allocated by the manager (monotone).
    pub fn allocated(&self) -> usize {
        self.nodes.len()
    }

    /// Decompose an internal node into `(variable, low, high)`.
    ///
    /// # Panics
    /// If `id` is a terminal.
    pub fn node_parts(&self, id: NodeId) -> (Var, NodeId, NodeId) {
        assert!(id != TRUE && id != FALSE, "terminals have no parts");
        let n = self.nodes[id.0 as usize];
        (self.var_at(n.level), n.low, n.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Formula;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn terminals() {
        let mut m = BddManager::new();
        assert_eq!(m.from_formula(&Formula::True), TRUE);
        assert_eq!(m.from_formula(&Formula::False), FALSE);
        assert_eq!(m.not(TRUE), FALSE);
    }

    #[test]
    fn canonicity_equivalent_formulas_same_node() {
        let mut m = BddManager::new();
        let a = m.from_formula(&v(0).implies(v(1)));
        let b = m.from_formula(&v(0).not().or(v(1)));
        assert_eq!(a, b);
        let c = m.from_formula(&v(0).and(v(0).not()));
        assert_eq!(c, FALSE);
    }

    #[test]
    fn model_check_walks() {
        let mut m = BddManager::new();
        let f = m.from_formula(&v(0).xor(v(1)));
        let m01: Interpretation = [Var(0)].into_iter().collect();
        let m2: Interpretation = [Var(0), Var(1)].into_iter().collect();
        assert!(m.model_check(f, &m01));
        assert!(!m.model_check(f, &m2));
        assert!(!m.model_check(f, &Interpretation::new()));
    }

    #[test]
    fn count_models_xor_chain() {
        let mut m = BddManager::new();
        // x0 ⊕ x1 ⊕ x2 has 4 models over 3 vars.
        let f = m.from_formula(&v(0).xor(v(1)).xor(v(2)));
        assert_eq!(m.count_models(f), 4);
        assert_eq!(m.count_models(TRUE), 8);
        assert_eq!(m.count_models(FALSE), 0);
    }

    #[test]
    fn count_models_skipped_levels() {
        let mut m = BddManager::with_order([Var(0), Var(1), Var(2)]);
        let f = m.from_formula(&v(1)); // x1, free x0 x2
        assert_eq!(m.count_models(f), 4);
    }

    #[test]
    fn exists_forall() {
        let mut m = BddManager::new();
        let f = m.from_formula(&v(0).and(v(1)));
        let e = m.exists(f, &[Var(0)]);
        let expect = m.from_formula(&v(1));
        assert_eq!(e, expect);
        let a = m.forall(f, &[Var(0)]);
        assert_eq!(a, FALSE);
        let g = m.from_formula(&v(0).or(v(1)));
        let ag = m.forall(g, &[Var(0)]);
        assert_eq!(ag, expect);
    }

    #[test]
    fn exists_multiple_vars() {
        let mut m = BddManager::new();
        let f = m.from_formula(&v(0).and(v(1)).and(v(2)));
        let e = m.exists(f, &[Var(0), Var(2)]);
        let expect = m.from_formula(&v(1));
        assert_eq!(e, expect);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = BddManager::new();
        let f = m.from_formula(&v(0).iff(v(1)));
        let r1 = m.restrict(f, Var(0), true);
        assert_eq!(r1, m.from_formula(&v(1)));
        let r0 = m.restrict(f, Var(0), false);
        assert_eq!(r0, m.from_formula(&v(1).not()));
        // f[x0 / (x2 ∧ x3)] == (x2∧x3) ↔ x1
        let g = m.from_formula(&v(2).and(v(3)));
        let comp = m.compose(f, Var(0), g);
        let expect = m.from_formula(&v(2).and(v(3)).iff(v(1)));
        assert_eq!(comp, expect);
    }

    #[test]
    fn any_model_and_all_models() {
        let mut m = BddManager::new();
        let formula = v(0).xor(v(1));
        let f = m.from_formula(&formula);
        let model = m.any_model(f).unwrap();
        assert!(formula.eval(&model));
        let all = m.all_models(f);
        assert_eq!(all.len(), 2);
        assert!(m.any_model(FALSE).is_none());
    }

    #[test]
    fn size_counts_reachable() {
        let mut m = BddManager::new();
        let f = m.from_formula(&v(0));
        assert_eq!(m.size(f), 3); // node + 2 terminals
        assert_eq!(m.size(TRUE), 1);
    }

    #[test]
    fn agrees_with_truth_tables() {
        use revkb_logic::Alphabet;
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..100 {
            // random formula over 5 vars, depth 4
            fn build(rnd: &mut impl FnMut() -> u32, depth: u32) -> Formula {
                let r = rnd();
                if depth == 0 || r.is_multiple_of(7) {
                    return Formula::lit(Var(r % 5), r & 1 == 0);
                }
                let a = build(rnd, depth - 1);
                let b = build(rnd, depth - 1);
                match r % 5 {
                    0 => a.and(b),
                    1 => a.or(b),
                    2 => a.implies(b),
                    3 => a.xor(b),
                    _ => a.iff(b),
                }
            }
            let f = build(&mut rnd, 4);
            let mut m = BddManager::with_order((0..5).map(Var));
            let node = m.from_formula(&f);
            let alpha = Alphabet::new((0..5).map(Var).collect());
            for mask in 0..32u64 {
                let interp = alpha.mask_to_interpretation(mask);
                assert_eq!(
                    m.model_check(node, &interp),
                    alpha.eval_mask(&f, mask),
                    "mismatch on {f:?} at {mask:b}"
                );
            }
            let expected_count = alpha.models(&f).len() as u128;
            assert_eq!(m.count_models(node), expected_count);
        }
    }
}
