//! # revkb-obs
//!
//! Zero-dependency telemetry substrate for the `revkb` workspace: a
//! thread-safe metrics registry ([`Counter`], [`Gauge`], [`Histogram`])
//! plus hierarchical wall-time [`span`]s, drained into a [`Snapshot`]
//! that renders as JSON or as a Chrome trace-event file loadable in
//! `chrome://tracing` / Perfetto.
//!
//! The paper's compactability claims are about *where the cost lives*
//! (compilation size vs. query time, per operator); this crate is the
//! substrate every layer reports against — the Tseitin transform, the
//! CDCL query sessions, the BDD manager's apply cache, and the
//! per-operator compile phases all define instruments here.
//!
//! ## Modes
//!
//! Everything is controlled by the `REVKB_TRACE` environment variable
//! (read once, overridable in-process with [`set_mode`]):
//!
//! | mode      | counters / gauges / histograms | span aggregates | span events | chrome trace |
//! |-----------|--------------------------------|-----------------|-------------|--------------|
//! | `off`     | no                             | no              | no          | no           |
//! | `summary` | yes                            | yes             | no          | no           |
//! | `spans`   | yes                            | yes             | yes         | no           |
//! | `chrome`  | yes                            | yes             | yes         | yes¹         |
//!
//! ¹ the trace file is written by whoever drains (the bench binaries);
//! this crate only marks the intent via [`TraceMode::Chrome`].
//!
//! Independently of the mode, an always-on **flight recorder**
//! ([`trace`]) keeps a bounded ring of the most recent finished spans
//! for on-demand diagnostics (`REVKB_FLIGHT=off` disables it), and the
//! [`log`] module provides leveled structured NDJSON logging
//! (`REVKB_LOG`, default `info`) with its own bounded ring. Trace ids
//! ([`new_trace_id`], [`parse_traceparent`]) join spans, log records,
//! and wire envelopes into one per-request story.
//!
//! ## Cost when disabled
//!
//! Every instrument call starts with one relaxed atomic load of the
//! mode; when the mode is [`TraceMode::Off`] nothing else happens — no
//! allocation, no lock, no time stamp. The workspace's overhead-guard
//! test pins this: the disabled-path cost across a whole batch-query
//! workload must stay under 5% of the measured batch wall time.
//!
//! ## Usage
//!
//! ```
//! use revkb_obs as obs;
//!
//! static QUERIES: obs::Counter = obs::Counter::new("example.queries");
//! static LATENCY: obs::Histogram = obs::Histogram::new("example.micros");
//!
//! obs::set_mode(obs::TraceMode::Spans);
//! {
//!     let _span = obs::span("example.work");
//!     QUERIES.inc();
//!     LATENCY.record(42);
//! }
//! let snap = obs::drain();
//! assert_eq!(snap.counter("example.queries"), Some(1));
//! assert_eq!(snap.spans.len(), 1);
//! obs::set_mode(obs::TraceMode::Off);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod chrome;
pub mod log;
pub mod metrics;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use check::validate_json;
pub use chrome::{chrome_trace, trace_file_path, write_chrome_trace, TRACE_FILE_ENV};
pub use log::{
    clear_log_file, debug, error, info, log, log_enabled, log_level, log_ring_reset,
    log_ring_snapshot, set_log_file, set_log_level, warn, Level, LogRecord, LOG_ENV,
    LOG_RING_CAPACITY,
};
pub use metrics::{estimate_percentile, Counter, Gauge, Histogram, LocalHistogram, HIST_BUCKETS};
pub use snapshot::{drain, reset, snapshot, HistogramSnapshot, Snapshot, SpanAggregate};
pub use span::{span, span_with, SpanEvent, SpanGuard};
pub use timeseries::{
    sample_interval, Observation, Sampler, SeriesKind, SeriesSnapshot, SeriesStore,
    DEFAULT_SAMPLE_MS, DEFAULT_SERIES_CAPACITY, SAMPLE_MS_ENV,
};
pub use trace::{
    flight_enabled, flight_len, flight_reset, flight_snapshot, format_trace_id, new_trace_id,
    parse_trace_id, parse_traceparent, set_flight_enabled, FLIGHT_CAPACITY, FLIGHT_ENV, TRACE_ATTR,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the trace mode (`off`, `summary`,
/// `spans`, `chrome`). Unset or unrecognised values mean `off`.
pub const TRACE_ENV: &str = "REVKB_TRACE";

/// How much telemetry is recorded. See the crate docs for the full
/// mode table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceMode {
    /// Record nothing; every instrument call is a single relaxed load.
    Off = 0,
    /// Record counters, gauges, histograms, and per-name span
    /// aggregates — no individual span events.
    Summary = 1,
    /// `Summary` plus individual span events (the span tree).
    Spans = 2,
    /// `Spans` plus the intent to export a Chrome trace file.
    Chrome = 3,
}

impl TraceMode {
    /// The mode's name as accepted by `REVKB_TRACE`.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Summary => "summary",
            TraceMode::Spans => "spans",
            TraceMode::Chrome => "chrome",
        }
    }

    /// Parse a `REVKB_TRACE` value; unknown strings are `Off`.
    pub fn parse(s: &str) -> TraceMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" => TraceMode::Summary,
            "spans" => TraceMode::Spans,
            "chrome" => TraceMode::Chrome,
            _ => TraceMode::Off,
        }
    }

    /// Are individual span events retained in this mode?
    pub fn spans_enabled(self) -> bool {
        matches!(self, TraceMode::Spans | TraceMode::Chrome)
    }

    fn from_u8(v: u8) -> TraceMode {
        match v {
            1 => TraceMode::Summary,
            2 => TraceMode::Spans,
            3 => TraceMode::Chrome,
            _ => TraceMode::Off,
        }
    }
}

const MODE_UNINIT: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// The current trace mode (initialised from `REVKB_TRACE` on first
/// call). This is the hot-path gate: a single relaxed atomic load.
#[inline]
pub fn mode() -> TraceMode {
    let raw = MODE.load(Ordering::Relaxed);
    if raw == MODE_UNINIT {
        init_mode_from_env()
    } else {
        TraceMode::from_u8(raw)
    }
}

#[cold]
fn init_mode_from_env() -> TraceMode {
    let m = std::env::var(TRACE_ENV)
        .map(|v| TraceMode::parse(&v))
        .unwrap_or(TraceMode::Off);
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// Override the trace mode in-process (tests, binaries with flags).
pub fn set_mode(m: TraceMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Is any telemetry being recorded at all?
#[inline]
pub fn enabled() -> bool {
    mode() != TraceMode::Off
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Unit tests across modules mutate the global mode and
    //! registries; this lock serialises them.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("SUMMARY"), TraceMode::Summary);
        assert_eq!(TraceMode::parse(" spans "), TraceMode::Spans);
        assert_eq!(TraceMode::parse("chrome"), TraceMode::Chrome);
        assert_eq!(TraceMode::parse("bogus"), TraceMode::Off);
        for m in [
            TraceMode::Off,
            TraceMode::Summary,
            TraceMode::Spans,
            TraceMode::Chrome,
        ] {
            assert_eq!(TraceMode::parse(m.name()), m);
            assert_eq!(TraceMode::from_u8(m as u8), m);
        }
    }

    #[test]
    fn spans_enabled_table() {
        assert!(!TraceMode::Off.spans_enabled());
        assert!(!TraceMode::Summary.spans_enabled());
        assert!(TraceMode::Spans.spans_enabled());
        assert!(TraceMode::Chrome.spans_enabled());
    }
}
