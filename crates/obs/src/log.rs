//! Leveled structured logging: NDJSON records with a bounded
//! in-memory ring, an optional log file, and stderr passthrough.
//!
//! Replaces the server's ad-hoc `eprintln!` diagnostics. Every record
//! carries a timestamp, a level, a target (the subsystem that emitted
//! it), an optional trace id joining it to the request's span tree,
//! and the human-readable message. Three sinks, decoupled:
//!
//! * **stderr** gets the message text verbatim (so existing operator
//!   greps and the smoke script's banner parsing keep working
//!   byte-for-byte at the default level);
//! * the **ring** keeps the last [`LOG_RING_CAPACITY`] records for
//!   `/debug/logs.json`;
//! * the optional **file** ([`set_log_file`], `--log-file`) receives
//!   one NDJSON line per record, written unbuffered so a SIGKILL'd
//!   process still leaves a parseable prefix.
//!
//! The level gate (`REVKB_LOG`, default `info`) is the same
//! single-relaxed-load pattern as the trace mode: a suppressed
//! `debug` call never formats its message (the message is built by a
//! closure evaluated only past the gate).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Environment variable selecting the log level (`error`, `warn`,
/// `info`, `debug`). Unset or unrecognised values mean `info`.
pub const LOG_ENV: &str = "REVKB_LOG";

/// How many records the in-memory ring retains (oldest evicted
/// first).
pub const LOG_RING_CAPACITY: usize = 1024;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed and data or service was affected.
    Error = 0,
    /// Something went wrong but the server routed around it.
    Warn = 1,
    /// Lifecycle events an operator wants in the journal. The default.
    Info = 2,
    /// Per-request chatter for live debugging.
    Debug = 3,
}

impl Level {
    /// The level's name as accepted by `REVKB_LOG` and rendered in
    /// NDJSON records.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a `REVKB_LOG` value; unknown strings are `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }
}

const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// The current log level (initialised from `REVKB_LOG` on first
/// call). Hot-path gate: a single relaxed atomic load.
#[inline]
pub fn log_level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == LEVEL_UNINIT {
        init_level_from_env()
    } else {
        Level::from_u8(raw)
    }
}

#[cold]
fn init_level_from_env() -> Level {
    let level = std::env::var(LOG_ENV)
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Info);
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Override the log level in-process (tests, binaries with flags).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Would a record at `level` be emitted right now?
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level <= log_level()
}

/// One emitted log record, as retained in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_millis: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (e.g. `"server"`, `"wal"`, `"repl"`).
    pub target: &'static str,
    /// Trace id of the request this record belongs to, if any.
    pub trace: Option<u64>,
    /// Human-readable message (also what stderr shows verbatim).
    pub msg: String,
}

impl LogRecord {
    /// Render the record as one NDJSON line (no trailing newline):
    /// `{"ts":…,"level":"…","target":"…","trace":"…","msg":"…"}` with
    /// `trace` omitted when absent.
    pub fn render_json(&self) -> String {
        let mut line = String::with_capacity(self.msg.len() + 64);
        line.push_str("{\"ts\":");
        line.push_str(&self.ts_millis.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(self.level.name());
        line.push_str("\",\"target\":\"");
        line.push_str(self.target);
        line.push('"');
        if let Some(trace) = self.trace {
            line.push_str(",\"trace\":\"");
            line.push_str(&crate::trace::format_trace_id(trace));
            line.push('"');
        }
        line.push_str(",\"msg\":");
        escape_json_str(&self.msg, &mut line);
        line.push('}');
        line
    }
}

fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

static RING: Mutex<VecDeque<LogRecord>> = Mutex::new(VecDeque::new());
static FILE: Mutex<Option<File>> = Mutex::new(None);

/// Open (append) `path` as the NDJSON log file. Every subsequent
/// record is written to it as one line, unbuffered — a crash loses at
/// most the record being written.
pub fn set_log_file(path: &Path) -> io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *FILE.lock().expect("log file poisoned") = Some(file);
    Ok(())
}

/// Drop the log file sink (tests).
pub fn clear_log_file() {
    *FILE.lock().expect("log file poisoned") = None;
}

fn epoch_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emit one record. The message closure runs only when `level` passes
/// the gate, so suppressed records never format. The message goes to
/// stderr verbatim; the structured record goes to the ring and the
/// log file.
pub fn log(level: Level, target: &'static str, trace: Option<u64>, msg: impl FnOnce() -> String) {
    if !log_enabled(level) {
        return;
    }
    emit(level, target, trace, msg());
}

#[cold]
fn emit(level: Level, target: &'static str, trace: Option<u64>, msg: String) {
    eprintln!("{msg}");
    let record = LogRecord {
        ts_millis: epoch_millis(),
        level,
        target,
        trace,
        msg,
    };
    {
        let mut file = FILE.lock().expect("log file poisoned");
        if let Some(file) = file.as_mut() {
            let mut line = record.render_json();
            line.push('\n');
            let _ = file.write_all(line.as_bytes());
        }
    }
    let mut ring = RING.lock().expect("log ring poisoned");
    while ring.len() >= LOG_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// Emit at [`Level::Error`].
pub fn error(target: &'static str, trace: Option<u64>, msg: impl FnOnce() -> String) {
    log(Level::Error, target, trace, msg);
}

/// Emit at [`Level::Warn`].
pub fn warn(target: &'static str, trace: Option<u64>, msg: impl FnOnce() -> String) {
    log(Level::Warn, target, trace, msg);
}

/// Emit at [`Level::Info`].
pub fn info(target: &'static str, trace: Option<u64>, msg: impl FnOnce() -> String) {
    log(Level::Info, target, trace, msg);
}

/// Emit at [`Level::Debug`].
pub fn debug(target: &'static str, trace: Option<u64>, msg: impl FnOnce() -> String) {
    log(Level::Debug, target, trace, msg);
}

/// The ring's current contents, oldest first.
pub fn log_ring_snapshot() -> Vec<LogRecord> {
    RING.lock()
        .expect("log ring poisoned")
        .iter()
        .cloned()
        .collect()
}

/// Empty the ring (tests).
pub fn log_ring_reset() {
    RING.lock().expect("log ring poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.name()), Some(level));
            assert_eq!(Level::from_u8(level as u8), level);
        }
    }

    #[test]
    fn suppressed_records_never_format() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        let was = log_level();
        set_log_level(Level::Info);
        log_ring_reset();
        let mut ran = false;
        debug("test", None, || {
            ran = true;
            "should not format".to_string()
        });
        assert!(!ran, "suppressed level formatted its message");
        assert!(log_ring_snapshot().is_empty());
        set_log_level(was);
    }

    #[test]
    fn ring_is_bounded_and_filterable() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        let was = log_level();
        set_log_level(Level::Error);
        log_ring_reset();
        for i in 0..(LOG_RING_CAPACITY + 5) {
            error("test", Some(9), move || format!("record {i}"));
        }
        let records = log_ring_snapshot();
        assert_eq!(records.len(), LOG_RING_CAPACITY);
        assert_eq!(records[0].msg, "record 5", "oldest five evicted");
        assert!(records.iter().all(|r| r.trace == Some(9)));
        log_ring_reset();
        set_log_level(was);
    }

    #[test]
    fn ndjson_shape_is_pinned() {
        let record = LogRecord {
            ts_millis: 1234,
            level: Level::Warn,
            target: "wal",
            trace: Some(0xabc),
            msg: "say \"hi\"\n".to_string(),
        };
        assert_eq!(
            record.render_json(),
            r#"{"ts":1234,"level":"warn","target":"wal","trace":"0000000000000abc","msg":"say \"hi\"\n"}"#
        );
        let plain = LogRecord {
            ts_millis: 1,
            level: Level::Info,
            target: "server",
            trace: None,
            msg: "up".to_string(),
        };
        assert_eq!(
            plain.render_json(),
            r#"{"ts":1,"level":"info","target":"server","msg":"up"}"#
        );
        assert!(crate::validate_json(&record.render_json()));
        assert!(crate::validate_json(&plain.render_json()));
    }

    #[test]
    fn log_file_receives_ndjson_lines() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        let was = log_level();
        set_log_level(Level::Info);
        log_ring_reset();
        let dir = std::env::temp_dir().join(format!("revkb-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ndjson");
        let _ = std::fs::remove_file(&path);
        set_log_file(&path).unwrap();
        info("test", Some(0x1234), || "file line one".to_string());
        warn("test", None, || "file line two".to_string());
        clear_log_file();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(crate::validate_json(line), "not JSON: {line}");
        }
        assert!(lines[0].contains("\"trace\":\"0000000000001234\""));
        assert!(lines[1].contains("\"level\":\"warn\""));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
        log_ring_reset();
        set_log_level(was);
    }
}
