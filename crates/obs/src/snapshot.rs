//! Draining the registry and span buffers into a [`Snapshot`].

use crate::metrics::{COUNTERS, GAUGES, HISTOGRAMS};
use crate::span::{SpanEvent, AGGS, EVENTS};
use crate::TraceMode;

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Sparse `(bucket index, occupancy)` pairs — empty buckets are
    /// omitted. See [`crate::HIST_BUCKETS`] for the bucket scheme.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `p`-quantile of the captured distribution; `None`
    /// when the histogram was empty. Same estimator as
    /// [`crate::Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> Option<u64> {
        crate::metrics::estimate_percentile(self.count, self.max, self.buckets.iter().copied(), p)
    }
}

/// Per-name span aggregate (kept in every enabled mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: &'static str,
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across runs, nanoseconds.
    pub total_ns: u64,
    /// Longest single run, nanoseconds.
    pub max_ns: u64,
}

/// A consistent copy of everything the telemetry layer has recorded.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Mode at capture time.
    pub mode: TraceMode,
    /// `(name, value)` for every counter touched so far, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge touched so far, sorted by name.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every histogram touched so far, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-name span aggregates, sorted by name.
    pub span_aggregates: Vec<SpanAggregate>,
    /// Individual span events (empty outside `spans`/`chrome` modes),
    /// sorted by `(thread, start_ns)`.
    pub spans: Vec<SpanEvent>,
}

impl Snapshot {
    /// Value of the named counter, if it has been touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the named gauge, if it has been touched.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The named histogram, if it has been touched.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The named span aggregate, if that span ever ran.
    pub fn span_aggregate(&self, name: &str) -> Option<&SpanAggregate> {
        self.span_aggregates.iter().find(|a| a.name == name)
    }

    /// Is there anything in this snapshot at all?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.span_aggregates.is_empty()
            && self.spans.is_empty()
    }

    /// Render the snapshot as a single-line JSON object with sorted
    /// keys: `mode`, `counters`, `gauges`, `histograms`,
    /// `span_aggregates`, and a nested `span_tree`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str("\"mode\":");
        push_json_str(&mut out, self.mode.name());
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, h.name);
            let (p50, p95, p99) = (
                h.percentile(0.50).unwrap_or(0),
                h.percentile(0.95).unwrap_or(0),
                h.percentile(0.99).unwrap_or(0),
            );
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"buckets\":{{",
                h.count, h.sum, h.max
            ));
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{b}\":{n}"));
            }
            out.push_str("}}");
        }
        out.push_str("},\"span_aggregates\":{");
        for (i, a) in self.span_aggregates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, a.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                a.count, a.total_ns, a.max_ns
            ));
        }
        out.push_str("},\"span_tree\":");
        self.push_span_tree(&mut out);
        out.push('}');
        out
    }

    /// Render the span events as a forest nested by parent links,
    /// one entry per root span, children ordered by start time.
    fn push_span_tree(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        // Spans are sorted by (thread, start_ns); within one thread a
        // parent always starts before its children, so a stack walk
        // reconstructs the nesting.
        for root_idx in 0..self.spans.len() {
            let root = &self.spans[root_idx];
            if root.parent.is_some() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            self.push_span_node(out, root_idx);
        }
        out.push(']');
    }

    fn push_span_node(&self, out: &mut String, idx: usize) {
        let s = &self.spans[idx];
        out.push_str("{\"name\":");
        push_json_str(out, s.name);
        out.push_str(&format!(
            ",\"thread\":{},\"start_ns\":{},\"dur_ns\":{}",
            s.thread, s.start_ns, s.dur_ns
        ));
        if !s.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(out, k);
                out.push(':');
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        out.push_str(",\"children\":[");
        let mut first = true;
        for (j, c) in self.spans.iter().enumerate() {
            if c.thread == s.thread && c.parent == Some(s.id) {
                if !first {
                    out.push(',');
                }
                first = false;
                self.push_span_node(out, j);
            }
        }
        out.push_str("]}");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Non-destructive copy of everything recorded so far. Spans still
/// open (or buffered on threads that are still inside a root span)
/// are not included.
pub fn snapshot() -> Snapshot {
    let mut counters: Vec<(&'static str, u64)> = COUNTERS
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|c| (c.name(), c.value()))
        .collect();
    counters.sort_unstable_by_key(|(n, _)| *n);

    let mut gauges: Vec<(&'static str, u64)> = GAUGES
        .lock()
        .expect("gauge registry poisoned")
        .iter()
        .map(|g| (g.name(), g.value()))
        .collect();
    gauges.sort_unstable_by_key(|(n, _)| *n);

    let mut histograms: Vec<HistogramSnapshot> = HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
        .map(|h| {
            let buckets = (0..crate::HIST_BUCKETS)
                .filter_map(|b| {
                    let n = h.bucket(b);
                    (n > 0).then_some((b, n))
                })
                .collect();
            HistogramSnapshot {
                name: h.name(),
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                buckets,
            }
        })
        .collect();
    histograms.sort_unstable_by_key(|h| h.name);

    let span_aggregates: Vec<SpanAggregate> = AGGS
        .lock()
        .expect("span aggregate table poisoned")
        .iter()
        .map(|(name, a)| SpanAggregate {
            name,
            count: a.count,
            total_ns: a.total_ns,
            max_ns: a.max_ns,
        })
        .collect();

    let mut spans: Vec<SpanEvent> = EVENTS.lock().expect("span event buffer poisoned").clone();
    spans.sort_unstable_by_key(|s| (s.thread, s.start_ns, s.id));

    Snapshot {
        mode: crate::mode(),
        counters,
        gauges,
        histograms,
        span_aggregates,
        spans,
    }
}

/// Capture a [`Snapshot`] and reset all instruments and span buffers.
pub fn drain() -> Snapshot {
    let snap = snapshot();
    reset();
    snap
}

/// Zero every registered instrument and clear all span state.
/// Instruments stay registered (their next record is cheap).
pub fn reset() {
    for c in COUNTERS.lock().expect("counter registry poisoned").iter() {
        c.reset();
    }
    for g in GAUGES.lock().expect("gauge registry poisoned").iter() {
        g.reset();
    }
    for h in HISTOGRAMS
        .lock()
        .expect("histogram registry poisoned")
        .iter()
    {
        h.reset();
    }
    AGGS.lock().expect("span aggregate table poisoned").clear();
    EVENTS.lock().expect("span event buffer poisoned").clear();
}

#[cfg(test)]
mod tests {
    use crate::TraceMode;

    static SNAP_C: crate::Counter = crate::Counter::new("snapshot.test.counter");
    static SNAP_H: crate::Histogram = crate::Histogram::new("snapshot.test.hist");

    #[test]
    fn snapshot_json_is_valid_and_sorted() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Spans);
        crate::reset();
        SNAP_C.add(7);
        SNAP_H.record(300);
        {
            let _root = crate::span("snapshot.test.root");
            let _child = crate::span("snapshot.test.child");
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        assert_eq!(snap.counter("snapshot.test.counter"), Some(7));
        assert_eq!(snap.counter("snapshot.test.missing"), None);
        assert_eq!(snap.histogram("snapshot.test.hist").unwrap().count, 1);
        assert_eq!(snap.span_aggregate("snapshot.test.root").unwrap().count, 1);
        let json = snap.to_json();
        assert!(crate::validate_json(&json), "invalid JSON: {json}");
        assert!(json.contains("\"snapshot.test.counter\":7"));
        assert!(json.contains("\"span_tree\":"));
        assert!(json.contains("\"snapshot.test.child\""));
        // Sorted counter names.
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn drain_resets_state() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Summary);
        crate::reset();
        SNAP_C.add(3);
        let first = crate::drain();
        assert_eq!(first.counter("snapshot.test.counter"), Some(3));
        let second = crate::snapshot();
        crate::set_mode(TraceMode::Off);
        assert_eq!(second.counter("snapshot.test.counter"), Some(0));
        assert!(second.spans.is_empty());
    }
}
