//! Fixed-interval time series over instrument values.
//!
//! A [`Sampler`] runs a background thread that, every
//! `REVKB_OBS_SAMPLE_MS` milliseconds (default 1 s), pulls the current
//! cumulative values from a caller-supplied source and folds them into
//! a [`SeriesStore`]: counters become per-interval **deltas**, gauges
//! are stored as-is, and every series lives in a bounded ring buffer
//! (default 300 samples, so five minutes of history at the default
//! interval). Rates — revisions per second, cache hit trends,
//! replication lag over time — therefore exist in-process, without an
//! external scraper having to poll and diff.
//!
//! The store itself is pure and clock-free (every [`SeriesStore::tick`]
//! takes an explicit timestamp), so tests and benchmarks drive it
//! deterministically; only [`Sampler::start`] touches a real clock.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable giving the sampler interval in milliseconds.
pub const SAMPLE_MS_ENV: &str = "REVKB_OBS_SAMPLE_MS";

/// Default sampler interval in milliseconds.
pub const DEFAULT_SAMPLE_MS: u64 = 1000;

/// Default per-series ring-buffer capacity (samples kept).
pub const DEFAULT_SERIES_CAPACITY: usize = 300;

/// The sampler interval: `REVKB_OBS_SAMPLE_MS`, or
/// [`DEFAULT_SAMPLE_MS`]. Clamped below at 10 ms so a typo cannot turn
/// the sampler into a busy loop.
pub fn sample_interval() -> Duration {
    let ms = std::env::var(SAMPLE_MS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_MS);
    Duration::from_millis(ms.max(10))
}

/// How a sampled value folds into its series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Cumulative and monotone: the series stores per-interval deltas.
    Counter,
    /// Instantaneous: the series stores the value itself.
    Gauge,
}

impl SeriesKind {
    /// Stable lowercase tag (`"counter"` / `"gauge"`).
    pub fn tag(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One instrument's current cumulative (or instantaneous) value, as
/// produced by a sampler source on each tick.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Instrument name (dotted, like the registry's).
    pub name: String,
    /// Counter or gauge semantics.
    pub kind: SeriesKind,
    /// The current value.
    pub value: u64,
}

impl Observation {
    /// A cumulative counter observation.
    pub fn counter(name: impl Into<String>, value: u64) -> Self {
        Observation {
            name: name.into(),
            kind: SeriesKind::Counter,
            value,
        }
    }

    /// An instantaneous gauge observation.
    pub fn gauge(name: impl Into<String>, value: u64) -> Self {
        Observation {
            name: name.into(),
            kind: SeriesKind::Gauge,
            value,
        }
    }
}

/// Sample every counter and gauge currently registered with the
/// telemetry registry (the default source for obs-only consumers; the
/// server supplies a richer source that also covers its always-on
/// counters, which live outside the registry).
pub fn obs_source() -> Vec<Observation> {
    let snap = crate::snapshot();
    let mut out = Vec::with_capacity(snap.counters.len() + snap.gauges.len());
    for (name, value) in snap.counters {
        out.push(Observation::counter(name, value));
    }
    for (name, value) in snap.gauges {
        out.push(Observation::gauge(name, value));
    }
    out
}

#[derive(Debug)]
struct Ring {
    kind: SeriesKind,
    /// Last cumulative value seen (counters only; detects resets).
    last: u64,
    points: VecDeque<(u64, u64)>,
}

/// A point-in-time copy of one series for rendering.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Instrument name.
    pub name: String,
    /// Counter (points are deltas) or gauge (points are values).
    pub kind: SeriesKind,
    /// `(at_millis, value)` pairs, oldest first. Timestamps are
    /// milliseconds since the store's origin (the sampler's start) and
    /// strictly increase.
    pub points: Vec<(u64, u64)>,
}

impl SeriesSnapshot {
    /// Mean per-second rate across the captured window (counters), or
    /// the latest value (gauges). `None` with fewer than one point or
    /// a zero-width window.
    pub fn per_sec(&self) -> Option<f64> {
        match self.kind {
            SeriesKind::Gauge => self.points.last().map(|&(_, v)| v as f64),
            SeriesKind::Counter => {
                let (first, last) = (self.points.first()?, self.points.last()?);
                // Each point covers the interval *ending* at its
                // timestamp, so the window reaches one interval before
                // the first point; with a single point the best guess
                // is its own timestamp (interval start ≈ origin).
                let span_millis = if self.points.len() == 1 {
                    first.0
                } else {
                    last.0 - first.0 + (last.0 - first.0) / (self.points.len() as u64 - 1)
                };
                if span_millis == 0 {
                    return None;
                }
                let total: u64 = self.points.iter().map(|&(_, v)| v).sum();
                Some(total as f64 * 1000.0 / span_millis as f64)
            }
        }
    }
}

/// Bounded ring buffers of sampled series, keyed by instrument name.
///
/// Pure state: the caller supplies timestamps, so ticks replay
/// deterministically in tests. Timestamps are forced strictly
/// monotone — a tick at or before the previous one lands one
/// millisecond after it, so rendering never sees time move backwards
/// even if the sampling clock does.
#[derive(Debug)]
pub struct SeriesStore {
    capacity: usize,
    /// Sorted by name for deterministic rendering.
    rings: Vec<(String, Ring)>,
    last_at: Option<u64>,
    ticks: u64,
}

impl SeriesStore {
    /// An empty store keeping at most `capacity` samples per series
    /// (capacity 0 keeps one).
    pub fn new(capacity: usize) -> Self {
        SeriesStore {
            capacity: capacity.max(1),
            rings: Vec::new(),
            last_at: None,
            ticks: 0,
        }
    }

    /// Per-series sample bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks folded in so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Fold one round of observations in at `at_millis` (milliseconds
    /// since the store's origin). Counters record the delta against
    /// their previous cumulative value (a shrunk value — an upstream
    /// reset — records 0 and re-bases); gauges record the value.
    pub fn tick(&mut self, at_millis: u64, observations: &[Observation]) {
        let at = match self.last_at {
            Some(prev) if at_millis <= prev => prev + 1,
            _ => at_millis,
        };
        self.last_at = Some(at);
        self.ticks += 1;
        for obs in observations {
            let idx = match self
                .rings
                .binary_search_by(|(n, _)| n.as_str().cmp(&obs.name))
            {
                Ok(idx) => idx,
                Err(idx) => {
                    self.rings.insert(
                        idx,
                        (
                            obs.name.clone(),
                            Ring {
                                kind: obs.kind,
                                last: 0,
                                points: VecDeque::new(),
                            },
                        ),
                    );
                    idx
                }
            };
            let ring = &mut self.rings[idx].1;
            let point = match ring.kind {
                SeriesKind::Gauge => obs.value,
                SeriesKind::Counter => {
                    let delta = obs.value.saturating_sub(ring.last);
                    ring.last = obs.value;
                    delta
                }
            };
            ring.points.push_back((at, point));
            while ring.points.len() > self.capacity {
                ring.points.pop_front();
            }
        }
    }

    /// Copy every series out, sorted by name.
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        self.rings
            .iter()
            .map(|(name, ring)| SeriesSnapshot {
                name: name.clone(),
                kind: ring.kind,
                points: ring.points.iter().copied().collect(),
            })
            .collect()
    }

    /// Copy one named series out.
    pub fn get(&self, name: &str) -> Option<SeriesSnapshot> {
        self.rings
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|idx| SeriesSnapshot {
                name: self.rings[idx].0.clone(),
                kind: self.rings[idx].1.kind,
                points: self.rings[idx].1.points.iter().copied().collect(),
            })
    }
}

/// Stop signal shared with the sampler thread: a flag under a mutex so
/// `stop()` can wake the thread out of its interval sleep immediately.
#[derive(Debug, Default)]
struct StopCell {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Handle to a background sampling thread feeding a shared
/// [`SeriesStore`].
///
/// The source callback returns the current cumulative values each
/// tick, or `None` to shut the thread down (e.g. when the owner it
/// weakly references is gone). Dropping the handle stops and joins the
/// thread; the store (behind its `Arc`) outlives it, so late readers
/// still see the final window.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<StopCell>,
    store: Arc<Mutex<SeriesStore>>,
    interval: Duration,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawn the sampling thread: every `interval` it calls `source`
    /// and folds the observations into a fresh store bounded at
    /// `capacity` samples per series, timestamped with milliseconds
    /// since this call.
    pub fn start<F>(interval: Duration, capacity: usize, mut source: F) -> Sampler
    where
        F: FnMut() -> Option<Vec<Observation>> + Send + 'static,
    {
        let stop = Arc::new(StopCell::default());
        let store = Arc::new(Mutex::new(SeriesStore::new(capacity)));
        let thread_stop = Arc::clone(&stop);
        let thread_store = Arc::clone(&store);
        let handle = std::thread::Builder::new()
            .name("revkb-obs-sampler".to_string())
            .spawn(move || {
                let origin = Instant::now();
                loop {
                    {
                        let mut stopped =
                            thread_stop.stopped.lock().expect("sampler stop poisoned");
                        let mut remaining = interval;
                        while !*stopped && remaining > Duration::ZERO {
                            let before = Instant::now();
                            let (guard, _) = thread_stop
                                .cv
                                .wait_timeout(stopped, remaining)
                                .expect("sampler stop poisoned");
                            stopped = guard;
                            remaining = remaining.saturating_sub(before.elapsed());
                        }
                        if *stopped {
                            return;
                        }
                    }
                    let Some(observations) = source() else {
                        return;
                    };
                    let at = u64::try_from(origin.elapsed().as_millis()).unwrap_or(u64::MAX);
                    thread_store
                        .lock()
                        .expect("series store poisoned")
                        .tick(at, &observations);
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            store,
            interval,
            handle: Some(handle),
        }
    }

    /// The shared store the thread feeds.
    pub fn store(&self) -> Arc<Mutex<SeriesStore>> {
        Arc::clone(&self.store)
    }

    /// The tick interval the thread was started with.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Copy every series out of the store.
    pub fn series(&self) -> Vec<SeriesSnapshot> {
        self.store.lock().expect("series store poisoned").series()
    }

    /// Signal the thread to exit (idempotent; returns without joining).
    pub fn stop(&self) {
        *self.stop.stopped.lock().expect("sampler stop poisoned") = true;
        self.stop.cv.notify_all();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.handle.take() {
            // The handle may be dropped *from the sampling thread
            // itself*: a source closure holding the last strong
            // reference to the sampler's owner tears the owner (and
            // this handle) down when it returns. Joining would then
            // self-deadlock; the stop flag above already guarantees
            // the thread exits at the top of its next iteration.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_store_deltas_and_gauges_store_values() {
        let mut store = SeriesStore::new(8);
        store.tick(
            1000,
            &[Observation::counter("c", 10), Observation::gauge("g", 100)],
        );
        store.tick(
            2000,
            &[Observation::counter("c", 25), Observation::gauge("g", 90)],
        );
        let c = store.get("c").unwrap();
        assert_eq!(c.kind, SeriesKind::Counter);
        assert_eq!(c.points, vec![(1000, 10), (2000, 15)]);
        let g = store.get("g").unwrap();
        assert_eq!(g.kind, SeriesKind::Gauge);
        assert_eq!(g.points, vec![(1000, 100), (2000, 90)]);
        assert_eq!(store.ticks(), 2);
    }

    #[test]
    fn counter_reset_rebases_instead_of_underflowing() {
        let mut store = SeriesStore::new(8);
        store.tick(1, &[Observation::counter("c", 50)]);
        store.tick(2, &[Observation::counter("c", 5)]); // upstream reset
        store.tick(3, &[Observation::counter("c", 12)]);
        let points = store.get("c").unwrap().points;
        assert_eq!(points, vec![(1, 50), (2, 0), (3, 7)]);
    }

    #[test]
    fn rings_stay_bounded_and_drop_oldest() {
        let mut store = SeriesStore::new(3);
        for i in 0..10u64 {
            store.tick(i * 10, &[Observation::gauge("g", i)]);
        }
        let points = store.get("g").unwrap().points;
        assert_eq!(points.len(), 3);
        assert_eq!(points, vec![(70, 7), (80, 8), (90, 9)]);
    }

    #[test]
    fn timestamps_are_forced_strictly_monotone() {
        let mut store = SeriesStore::new(8);
        store.tick(100, &[Observation::gauge("g", 1)]);
        store.tick(100, &[Observation::gauge("g", 2)]); // same clock read
        store.tick(50, &[Observation::gauge("g", 3)]); // clock went back
        let points = store.get("g").unwrap().points;
        assert_eq!(points, vec![(100, 1), (101, 2), (102, 3)]);
        let ts: Vec<u64> = points.iter().map(|&(t, _)| t).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn bounds_and_monotonicity_hold_under_concurrent_writers() {
        // The store is a Mutex-shared structure in real use; hammer it
        // from several threads and check the ring invariants after.
        let store = Arc::new(Mutex::new(SeriesStore::new(16)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let mut s = store.lock().unwrap();
                    s.tick(
                        t * 1000 + i,
                        &[
                            Observation::counter("c", t * 1000 + i),
                            Observation::gauge("g", i),
                        ],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let store = store.lock().unwrap();
        assert_eq!(store.ticks(), 800);
        for series in store.series() {
            assert!(series.points.len() <= 16, "{} overflowed", series.name);
            let ts: Vec<u64> = series.points.iter().map(|&(t, _)| t).collect();
            assert!(
                ts.windows(2).all(|w| w[0] < w[1]),
                "{} timestamps not strictly increasing: {ts:?}",
                series.name
            );
        }
    }

    #[test]
    fn per_sec_estimates_rates() {
        let mut store = SeriesStore::new(8);
        // 10 events per 1000 ms tick → 10/s.
        for i in 1..=4u64 {
            store.tick(i * 1000, &[Observation::counter("c", i * 10)]);
        }
        let rate = store.get("c").unwrap().per_sec().unwrap();
        assert!((rate - 10.0).abs() < 0.01, "rate={rate}");
        store.tick(5000, &[Observation::gauge("g", 42)]);
        assert_eq!(store.get("g").unwrap().per_sec(), Some(42.0));
        assert_eq!(
            SeriesSnapshot {
                name: "empty".into(),
                kind: SeriesKind::Counter,
                points: Vec::new(),
            }
            .per_sec(),
            None
        );
    }

    #[test]
    fn sampler_thread_samples_and_stops() {
        let sampler = Sampler::start(Duration::from_millis(10), 4, || {
            Some(vec![Observation::counter("s", 1)])
        });
        let store = sampler.store();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if store.lock().unwrap().ticks() >= 2 {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(sampler); // stops and joins
        let ticks = store.lock().unwrap().ticks();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(store.lock().unwrap().ticks(), ticks, "thread kept running");
    }

    #[test]
    fn sampler_source_none_terminates_the_thread() {
        let sampler = Sampler::start(Duration::from_millis(5), 4, || None);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.handle.as_ref().is_some_and(|h| !h.is_finished()) {
            assert!(Instant::now() < deadline, "thread never exited");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sampler.series().len(), 0);
    }

    #[test]
    fn obs_source_mirrors_registered_instruments() {
        static TS_C: crate::Counter = crate::Counter::new("timeseries.test.counter");
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(crate::TraceMode::Summary);
        crate::reset();
        TS_C.add(3);
        let observations = obs_source();
        crate::set_mode(crate::TraceMode::Off);
        let found = observations
            .iter()
            .find(|o| o.name == "timeseries.test.counter")
            .expect("registered counter sampled");
        assert_eq!(found.kind, SeriesKind::Counter);
        assert_eq!(found.value, 3);
    }

    #[test]
    fn sample_interval_has_a_floor() {
        if std::env::var_os(SAMPLE_MS_ENV).is_none() {
            assert_eq!(sample_interval(), Duration::from_millis(DEFAULT_SAMPLE_MS));
        }
    }
}
