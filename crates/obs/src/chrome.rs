//! Chrome trace-event export (`chrome://tracing` / Perfetto).
//!
//! Span events render as `"X"` (complete) events with microsecond
//! timestamps; counters render as one `"C"` event so the totals are
//! visible alongside the timeline. Everything lives under `pid` 1 with
//! `tid` equal to the recording thread's ordinal.

use crate::snapshot::Snapshot;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Environment variable naming the trace output file (default
/// `trace.json`).
pub const TRACE_FILE_ENV: &str = "REVKB_TRACE_FILE";

/// Where the Chrome trace should be written: `$REVKB_TRACE_FILE`, or
/// `trace.json` in the current directory.
pub fn trace_file_path() -> PathBuf {
    std::env::var_os(TRACE_FILE_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("trace.json"))
}

/// Render a snapshot in the Chrome trace-event JSON format.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in &snap.spans {
        if !first {
            out.push(',');
        }
        first = false;
        // ts/dur are microseconds (floats allowed; we emit integers).
        out.push_str(&format!(
            "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}",
            json_str(s.name),
            s.thread,
            s.start_ns / 1_000,
            (s.dur_ns / 1_000).max(1),
            s.depth
        ));
        for (k, v) in &s.attrs {
            out.push_str(&format!(",{}:{}", json_str(k), v));
        }
        out.push_str("}}");
    }
    if !snap.counters.is_empty() {
        let ts = snap
            .spans
            .iter()
            .map(|s| s.start_ns / 1_000)
            .max()
            .unwrap_or(0);
        if !first {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"revkb counters\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"args\":{{"
        ));
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(name), v));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write the Chrome trace for `snap` to `path`, durably: the file is
/// `sync_all`ed before close so a crash or hard kill right after the
/// server exits cannot leave a truncated trace, and any sync error is
/// returned instead of being swallowed by the implicit close.
pub fn write_chrome_trace(path: &Path, snap: &Snapshot) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace(snap).as_bytes())?;
    f.sync_all()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::TraceMode;

    static CHROME_C: crate::Counter = crate::Counter::new("chrome.test.counter");

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Chrome);
        crate::reset();
        CHROME_C.inc();
        {
            let _root = crate::span("chrome.test.root");
            let _child = crate::span("chrome.test.child");
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        let trace = super::chrome_trace(&snap);
        assert!(crate::validate_json(&trace), "invalid trace: {trace}");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"chrome.test.root\""));
        assert!(trace.contains("\"chrome.test.child\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"chrome.test.counter\":1"));
    }

    #[test]
    fn write_chrome_trace_lands_complete_on_disk() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Chrome);
        crate::reset();
        {
            let _s = crate::span("chrome.test.disk");
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        let path = std::env::temp_dir().join(format!("revkb-trace-{}.json", std::process::id()));
        super::write_chrome_trace(&path, &snap).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, super::chrome_trace(&snap));
        assert!(crate::validate_json(&on_disk));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_file_path_defaults_to_trace_json() {
        if std::env::var_os(super::TRACE_FILE_ENV).is_none() {
            assert_eq!(
                super::trace_file_path(),
                std::path::PathBuf::from("trace.json")
            );
        }
    }
}
