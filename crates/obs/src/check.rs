//! Minimal JSON validation, used by tests and the CI smoke to assert
//! that emitted reports and traces parse without pulling in a JSON
//! dependency.

/// Is `s` exactly one syntactically valid JSON value?
///
/// Full JSON grammar (objects, arrays, strings with escapes, numbers,
/// `true`/`false`/`null`); no semantic checks, no size limits beyond a
/// nesting-depth cap of 512.
pub fn validate_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    if !p.value(0) {
        return false;
    }
    p.skip_ws();
    p.pos == bytes.len()
}

const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> bool {
        if depth > MAX_DEPTH {
            return false;
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn literal(&mut self, lit: &[u8]) -> bool {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn object(&mut self, depth: usize) -> bool {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.eat(b'}') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if !self.eat(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value(depth + 1) {
                return false;
            }
            self.skip_ws();
            if self.eat(b'}') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn array(&mut self, depth: usize) -> bool {
        self.pos += 1; // '['
        self.skip_ws();
        if self.eat(b']') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value(depth + 1) {
                return false;
            }
            self.skip_ws();
            if self.eat(b']') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return true,
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => self.pos += 1,
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1f => return false, // raw control char
                _ => {}
            }
        }
        false // unterminated
    }

    fn number(&mut self) -> bool {
        self.eat(b'-');
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return false,
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return false;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return false;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_valid_json() {
        for s in [
            "null",
            "true",
            "false",
            "0",
            "-12.5e3",
            "\"hi\\n\\u00e9\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":{\"b\":[1,null,\"x\"]},\"c\":-0.5}",
            "  { \"k\" : [ true , false ] }  ",
        ] {
            assert!(validate_json(s), "should accept: {s}");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for s in [
            "",
            "nul",
            "01",
            "1.",
            "1e",
            "+1",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"ctrl\u{0}\"",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(!validate_json(s), "should reject: {s}");
        }
    }

    #[test]
    fn depth_cap() {
        let deep_ok = "[".repeat(100) + &"]".repeat(100);
        assert!(validate_json(&deep_ok));
        let too_deep = "[".repeat(600) + &"]".repeat(600);
        assert!(!validate_json(&too_deep));
    }
}
