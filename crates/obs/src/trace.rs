//! Always-on flight recorder and trace-context helpers.
//!
//! The `REVKB_TRACE` modes are boot-time configuration: a process that
//! started with tracing off cannot retroactively produce a span tree
//! for the request that just went wrong. The **flight recorder**
//! closes that gap: a bounded ring of the most recent finished spans,
//! fed by the span machinery in *every* mode (including `off`), so an
//! operator can fetch `/debug/trace.json` from a running server — no
//! restart, no `REVKB_TRACE` — and load the last few thousand spans in
//! a Chrome trace viewer. `REVKB_FLIGHT=off` disables it, restoring
//! the strict single-relaxed-load disabled path.
//!
//! This module also owns **trace ids**: nonzero `u64`s, rendered on
//! the wire as 16 lowercase hex digits, parsed from either the
//! envelope's `trace` field or a W3C `traceparent` header (whose
//! 128-bit trace id is truncated to its low 64 bits). Spans carry the
//! id as a `("trace", id)` attribute, so one id joins the wire
//! envelope, the log ring, the slow log, and the span tree.

use crate::span::SpanEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Environment variable controlling the flight recorder (`off` / `0` /
/// `false` / `no` disable it; anything else — including unset — leaves
/// it on).
pub const FLIGHT_ENV: &str = "REVKB_FLIGHT";

/// How many finished spans the flight ring retains (oldest evicted
/// first).
pub const FLIGHT_CAPACITY: usize = 4096;

/// The span attribute name under which trace ids travel.
pub const TRACE_ATTR: &str = "trace";

const FLIGHT_UNINIT: u8 = u8::MAX;
static FLIGHT: AtomicU8 = AtomicU8::new(FLIGHT_UNINIT);

/// Is the flight recorder on (initialised from `REVKB_FLIGHT` on
/// first call)? Hot-path gate: a single relaxed atomic load.
#[inline]
pub fn flight_enabled() -> bool {
    let raw = FLIGHT.load(Ordering::Relaxed);
    if raw == FLIGHT_UNINIT {
        init_flight_from_env()
    } else {
        raw != 0
    }
}

#[cold]
fn init_flight_from_env() -> bool {
    let on = std::env::var(FLIGHT_ENV)
        .map(|v| {
            !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            )
        })
        .unwrap_or(true);
    FLIGHT.store(u8::from(on), Ordering::Relaxed);
    on
}

/// Override the flight recorder in-process (tests, binaries).
pub fn set_flight_enabled(on: bool) {
    FLIGHT.store(u8::from(on), Ordering::Relaxed);
}

static RING: Mutex<VecDeque<SpanEvent>> = Mutex::new(VecDeque::new());

/// Push one finished span into the flight ring. Called by the span
/// machinery for every closed span while [`flight_enabled`] holds.
pub(crate) fn flight_record(event: &SpanEvent) {
    let mut ring = RING.lock().expect("flight ring poisoned");
    while ring.len() >= FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event.clone());
}

/// The flight ring's current contents, ordered like
/// [`crate::snapshot`] orders spans (by thread, then start time) so
/// the Chrome renderer nests them correctly.
pub fn flight_snapshot() -> Vec<SpanEvent> {
    let mut spans: Vec<SpanEvent> = {
        let ring = RING.lock().expect("flight ring poisoned");
        ring.iter().cloned().collect()
    };
    spans.sort_by_key(|s| (s.thread, s.start_ns, s.id));
    spans
}

/// How many spans the flight ring currently holds.
pub fn flight_len() -> usize {
    RING.lock().expect("flight ring poisoned").len()
}

/// Empty the flight ring (tests).
pub fn flight_reset() {
    RING.lock().expect("flight ring poisoned").clear();
}

// ------------------------------------------------------- trace ids

static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Generate a fresh nonzero trace id. Seeded from the wall clock and
/// the process id, stepped by a process-local counter, so two servers
/// started in the same nanosecond still diverge.
pub fn new_trace_id() -> u64 {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED)
        ^ u64::from(std::process::id()).rotate_left(32);
    loop {
        let n = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Render a trace id in its wire form: 16 lowercase hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire trace id: 1..=32 hex digits (longer ids — e.g. the
/// 32-digit W3C form — keep their low 64 bits). Zero is rejected: the
/// W3C spec reserves the all-zero id as "not a trace".
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let low = if s.len() > 16 { &s[s.len() - 16..] } else { s };
    match u64::from_str_radix(low, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Parse a W3C `traceparent` header value:
/// `00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`. Returns
/// the trace id's low 64 bits. Strict on structure — a malformed
/// header is an error the gateway reports, not a silent regeneration.
pub fn parse_traceparent(value: &str) -> Option<u64> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    let trace = parts.next()?;
    let parent = parts.next()?;
    let flags = parts.next()?;
    if parts.next().is_some()
        || version.len() != 2
        || trace.len() != 32
        || parent.len() != 16
        || flags.len() != 2
        || !version.bytes().all(|b| b.is_ascii_hexdigit())
        || !parent.bytes().all(|b| b.is_ascii_hexdigit())
        || !flags.bytes().all(|b| b.is_ascii_hexdigit())
        || version == "ff"
    {
        return None;
    }
    parse_trace_id(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_id_wire_form_round_trips() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            let wire = format_trace_id(id);
            assert_eq!(wire.len(), 16);
            assert_eq!(parse_trace_id(&wire), Some(id));
        }
        assert_eq!(parse_trace_id("abc"), Some(0xabc));
        // 32-digit ids keep their low 64 bits.
        assert_eq!(
            parse_trace_id("0123456789abcdef0123456789abcdef"),
            Some(0x0123_4567_89ab_cdef)
        );
        for bad in [
            "",
            "0",
            "0000000000000000",
            "xyz",
            "123 456",
            &"a".repeat(33),
        ] {
            assert_eq!(parse_trace_id(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn traceparent_parses_strictly() {
        assert_eq!(
            parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"),
            Some(0x8448_eb21_1c80_319c)
        );
        for bad in [
            "",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
            "00-00000000000000000000000000000000-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
            "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn flight_ring_is_bounded_and_ordered() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        let was = flight_enabled();
        set_flight_enabled(true);
        flight_reset();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            flight_record(&SpanEvent {
                name: "test.flight",
                thread: 0,
                id: i as u64,
                parent: None,
                depth: 0,
                start_ns: i as u64,
                dur_ns: 1,
                attrs: Vec::new(),
            });
        }
        let spans = flight_snapshot();
        assert_eq!(spans.len(), FLIGHT_CAPACITY);
        // The oldest 10 were evicted.
        assert_eq!(spans.first().map(|s| s.id), Some(10));
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        flight_reset();
        set_flight_enabled(was);
    }

    #[test]
    fn flight_records_spans_even_in_off_mode() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(crate::TraceMode::Off);
        let was = flight_enabled();
        set_flight_enabled(true);
        flight_reset();
        crate::reset();
        {
            let _s = crate::span_with("test.flight.off", &[(TRACE_ATTR, 7)]);
        }
        // Off mode still records nothing in the drainable registry…
        crate::set_mode(crate::TraceMode::Spans);
        let snap = crate::drain();
        crate::set_mode(crate::TraceMode::Off);
        assert!(snap.spans.is_empty());
        assert!(snap
            .span_aggregates
            .iter()
            .all(|a| a.name != "test.flight.off"));
        // …but the flight ring saw the span, attributes intact.
        let spans = flight_snapshot();
        let span = spans
            .iter()
            .find(|s| s.name == "test.flight.off")
            .expect("flight ring has the span");
        assert_eq!(span.attr(TRACE_ATTR), Some(7));
        flight_reset();
        set_flight_enabled(was);
    }

    #[test]
    fn flight_disabled_restores_the_null_path() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(crate::TraceMode::Off);
        let was = flight_enabled();
        set_flight_enabled(false);
        flight_reset();
        {
            let _s = crate::span("test.flight.disabled");
        }
        assert_eq!(flight_len(), 0);
        set_flight_enabled(was);
    }
}
