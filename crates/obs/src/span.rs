//! Hierarchical wall-time spans with RAII guards.
//!
//! Each thread keeps its own span stack (so nesting is tracked without
//! locks on the hot path); finished spans are flushed to a global
//! buffer when the thread's stack empties and when the thread exits,
//! so short-lived pool workers are merged correctly at drain time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span, as retained in `spans`/`chrome` modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"revision.compile"`).
    pub name: &'static str,
    /// Ordinal of the recording thread (stable within a process run).
    pub thread: u64,
    /// Per-thread span id (unique within `thread`).
    pub id: u64,
    /// Per-thread id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Nesting depth (0 for a root span).
    pub depth: u32,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric attributes attached at open time (see [`span_with`]),
    /// e.g. `("req", 17)` for per-request correlation. Empty for spans
    /// opened with plain [`span`].
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanEvent {
    /// Value of the named attribute, if present.
    pub fn attr(&self, name: &str) -> Option<u64> {
        self.attrs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// Per-name aggregate kept in every enabled mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Agg {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

pub(crate) static EVENTS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
pub(crate) static AGGS: Mutex<BTreeMap<&'static str, Agg>> = Mutex::new(BTreeMap::new());

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    depth: u32,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
}

struct ThreadSpans {
    ord: u64,
    next_id: u64,
    stack: Vec<ActiveSpan>,
    finished: Vec<SpanEvent>,
}

impl ThreadSpans {
    fn new() -> Self {
        Self {
            ord: NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed),
            next_id: 0,
            stack: Vec::new(),
            finished: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.finished.is_empty() {
            EVENTS
                .lock()
                .expect("span event buffer poisoned")
                .append(&mut self.finished);
        }
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        // Worker threads may exit with spans buffered but never see an
        // empty-stack flush; merge what they recorded.
        self.flush();
    }
}

thread_local! {
    static THREAD_SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::new());
}

/// RAII guard returned by [`span`]; records the span when dropped.
///
/// The guard is intentionally `!Send`: a span measures one thread's
/// wall time and must end on the thread that started it.
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

/// Open a span named `name`. Nothing is recorded in
/// [`crate::TraceMode::Off`]; aggregates are kept in every enabled
/// mode, and individual [`SpanEvent`]s additionally in `spans` and
/// `chrome` modes.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Open a span named `name` carrying numeric attributes (retained on
/// the [`SpanEvent`] in `spans`/`chrome` modes; aggregates ignore
/// them). The server uses this to stamp every `server.*` span with the
/// request id so a Chrome trace is correlatable per request.
#[inline]
pub fn span_with(name: &'static str, attrs: &[(&'static str, u64)]) -> SpanGuard {
    let mode = crate::mode();
    if mode == crate::TraceMode::Off && !crate::trace::flight_enabled() {
        return SpanGuard {
            armed: false,
            _not_send: PhantomData,
        };
    }
    open_span(name, attrs);
    SpanGuard {
        armed: true,
        _not_send: PhantomData,
    }
}

#[cold]
fn open_span(name: &'static str, attrs: &[(&'static str, u64)]) {
    let start_ns = epoch().elapsed().as_nanos() as u64;
    // Attributes only matter on retained events (the drainable span
    // tree or the flight ring); skip the allocation in summary mode.
    let attrs = if crate::mode().spans_enabled() || crate::trace::flight_enabled() {
        attrs.to_vec()
    } else {
        Vec::new()
    };
    THREAD_SPANS.with(|ts| {
        let mut ts = ts.borrow_mut();
        let id = ts.next_id;
        ts.next_id += 1;
        let parent = ts.stack.last().map(|a| a.id);
        let depth = ts.stack.len() as u32;
        ts.stack.push(ActiveSpan {
            name,
            id,
            parent,
            depth,
            start_ns,
            attrs,
        });
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            close_span();
        }
    }
}

#[cold]
fn close_span() {
    let now_ns = epoch().elapsed().as_nanos() as u64;
    let mode = crate::mode();
    let keep_aggs = mode != crate::TraceMode::Off;
    let keep_events = mode.spans_enabled();
    let keep_flight = crate::trace::flight_enabled();
    THREAD_SPANS.with(|ts| {
        let mut ts = ts.borrow_mut();
        let Some(active) = ts.stack.pop() else {
            return; // mode flipped mid-span; nothing to close
        };
        let dur_ns = now_ns.saturating_sub(active.start_ns);
        if keep_aggs {
            let mut aggs = AGGS.lock().expect("span aggregate table poisoned");
            let agg = aggs.entry(active.name).or_default();
            agg.count += 1;
            agg.total_ns += dur_ns;
            agg.max_ns = agg.max_ns.max(dur_ns);
        }
        if keep_events || keep_flight {
            let thread = ts.ord;
            let event = SpanEvent {
                name: active.name,
                thread,
                id: active.id,
                parent: active.parent,
                depth: active.depth,
                start_ns: active.start_ns,
                dur_ns,
                attrs: active.attrs,
            };
            if keep_flight {
                crate::trace::flight_record(&event);
            }
            if keep_events {
                ts.finished.push(event);
            }
        }
        if ts.stack.is_empty() {
            ts.flush();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMode;

    #[test]
    fn nested_spans_record_hierarchy() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Spans);
        crate::reset();
        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.dur_ns <= outer.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn span_attributes_are_retained_on_events() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Spans);
        crate::reset();
        {
            let _s = span_with("test.attr", &[("req", 42), ("shard", 3)]);
            let _plain = span("test.attr.child");
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        let tagged = snap.spans.iter().find(|s| s.name == "test.attr").unwrap();
        assert_eq!(tagged.attr("req"), Some(42));
        assert_eq!(tagged.attr("shard"), Some(3));
        assert_eq!(tagged.attr("missing"), None);
        let plain = snap
            .spans
            .iter()
            .find(|s| s.name == "test.attr.child")
            .unwrap();
        assert!(plain.attrs.is_empty());
    }

    #[test]
    fn summary_mode_keeps_aggregates_only() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Summary);
        crate::reset();
        {
            let _s = span("test.summary_only");
        }
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        assert!(snap.spans.is_empty());
        let agg = snap
            .span_aggregates
            .iter()
            .find(|a| a.name == "test.summary_only")
            .unwrap();
        assert_eq!(agg.count, 1);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Off);
        crate::reset();
        {
            let _s = span("test.off");
        }
        crate::set_mode(TraceMode::Spans);
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        assert!(snap.spans.is_empty());
        assert!(snap.span_aggregates.iter().all(|a| a.name != "test.off"));
    }

    #[test]
    fn cross_thread_spans_merge_at_drain() {
        let _g = crate::testutil::TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Spans);
        crate::reset();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("test.worker");
                });
            }
        });
        let snap = crate::drain();
        crate::set_mode(TraceMode::Off);
        assert_eq!(
            snap.spans
                .iter()
                .filter(|s| s.name == "test.worker")
                .count(),
            3
        );
        // Three distinct worker threads, three distinct ordinals.
        let mut ords: Vec<u64> = snap.spans.iter().map(|s| s.thread).collect();
        ords.sort_unstable();
        ords.dedup();
        assert_eq!(ords.len(), 3);
    }
}
