//! The metrics registry: counters, gauges, and log₂-bucket histograms.
//!
//! Instruments are declared as `static` items (`Counter::new` and
//! friends are `const fn`) and register themselves with the global
//! registry on first use while telemetry is enabled — there is no
//! registration boilerplate and no linker-section magic. When the mode
//! is [`crate::TraceMode::Off`] an instrument call is a single relaxed
//! atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Registered instruments, discovered lazily on first record.
pub(crate) static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
pub(crate) static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
pub(crate) static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` (no-op while telemetry is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if crate::enabled() {
            self.record(n);
        }
    }

    /// Add 1 (no-op while telemetry is off).
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    #[cold]
    fn record(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            COUNTERS
                .lock()
                .expect("counter registry poisoned")
                .push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value / high-watermark gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Store `v` (no-op while telemetry is off).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger (high-watermark semantics;
    /// no-op while telemetry is off).
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    #[cold]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            GAUGES.lock().expect("gauge registry poisoned").push(self);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds zero values, bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`. 64 buckets of powers of
/// two cover the entire `u64` range.
pub const HIST_BUCKETS: usize = 65;

#[allow(clippy::declare_interior_mutable_const)]
const BUCKET_ZERO: AtomicU64 = AtomicU64::new(0);

/// A `u64` histogram with fixed log₂ buckets plus count / sum / max.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    registered: AtomicBool,
}

/// Bucket index of a value: 0 for 0, otherwise `floor(log₂ v) + 1`.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    /// A new histogram (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [BUCKET_ZERO; HIST_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation (no-op while telemetry is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if crate::enabled() {
            self.record_inner(v);
        }
    }

    #[cold]
    fn record_inner(&'static self, v: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            HISTOGRAMS
                .lock()
                .expect("histogram registry poisoned")
                .push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `b` (see [`HIST_BUCKETS`]).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets[b].load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMode;

    // Tests here mutate the global mode; serialise them.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    static C: Counter = Counter::new("test.counter");
    static G: Gauge = Gauge::new("test.gauge");
    static H: Histogram = Histogram::new("test.hist");

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Off);
        let before = C.value();
        C.add(5);
        C.inc();
        G.set(9);
        H.record(7);
        assert_eq!(C.value(), before);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn enabled_records_and_registers() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Summary);
        C.reset();
        G.reset();
        H.reset();
        C.add(2);
        C.inc();
        G.set(4);
        G.set_max(2); // below current: keeps 4
        G.set_max(10);
        H.record(0);
        H.record(5);
        H.record(1000);
        assert_eq!(C.value(), 3);
        assert_eq!(G.value(), 10);
        assert_eq!(H.count(), 3);
        assert_eq!(H.sum(), 1005);
        assert_eq!(H.max(), 1000);
        assert_eq!(H.bucket(0), 1);
        assert_eq!(H.bucket(3), 1); // 5 ∈ [4, 8)
        assert_eq!(H.bucket(10), 1); // 1000 ∈ [512, 1024)
        assert!(COUNTERS
            .lock()
            .unwrap()
            .iter()
            .any(|c| c.name() == "test.counter"));
        assert!(GAUGES
            .lock()
            .unwrap()
            .iter()
            .any(|g| g.name() == "test.gauge"));
        assert!(HISTOGRAMS
            .lock()
            .unwrap()
            .iter()
            .any(|h| h.name() == "test.hist"));
        crate::set_mode(TraceMode::Off);
    }
}
