//! The metrics registry: counters, gauges, and log₂-bucket histograms.
//!
//! Instruments are declared as `static` items (`Counter::new` and
//! friends are `const fn`) and register themselves with the global
//! registry on first use while telemetry is enabled — there is no
//! registration boilerplate and no linker-section magic. When the mode
//! is [`crate::TraceMode::Off`] an instrument call is a single relaxed
//! atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Registered instruments, discovered lazily on first record.
pub(crate) static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
pub(crate) static GAUGES: Mutex<Vec<&'static Gauge>> = Mutex::new(Vec::new());
pub(crate) static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` (no-op while telemetry is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if crate::enabled() {
            self.record(n);
        }
    }

    /// Add 1 (no-op while telemetry is off).
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    #[cold]
    fn record(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            COUNTERS
                .lock()
                .expect("counter registry poisoned")
                .push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value / high-watermark gauge.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A new gauge (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Store `v` (no-op while telemetry is off).
    #[inline]
    pub fn set(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger (high-watermark semantics;
    /// no-op while telemetry is off).
    #[inline]
    pub fn set_max(&'static self, v: u64) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Add one (for gauges tracking a live population, e.g. open
    /// connections; no-op while telemetry is off).
    #[inline]
    pub fn inc(&'static self) {
        if crate::enabled() {
            self.ensure_registered();
            self.value.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtract one, saturating at zero (no-op while telemetry is
    /// off).
    #[inline]
    pub fn dec(&'static self) {
        if crate::enabled() {
            self.ensure_registered();
            let _ = self
                .value
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(1))
                });
        }
    }

    #[cold]
    fn ensure_registered(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            GAUGES.lock().expect("gauge registry poisoned").push(self);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds zero values, bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`. 64 buckets of powers of
/// two cover the entire `u64` range.
pub const HIST_BUCKETS: usize = 65;

#[allow(clippy::declare_interior_mutable_const)]
const BUCKET_ZERO: AtomicU64 = AtomicU64::new(0);

/// A `u64` histogram with fixed log₂ buckets plus count / sum / max.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    registered: AtomicBool,
}

/// Bucket index of a value: 0 for 0, otherwise `floor(log₂ v) + 1`.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    /// A new histogram (declare as a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [BUCKET_ZERO; HIST_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// The instrument's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one observation (no-op while telemetry is off).
    #[inline]
    pub fn record(&'static self, v: u64) {
        if crate::enabled() {
            self.record_inner(v);
        }
    }

    #[cold]
    fn record_inner(&'static self, v: u64) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            HISTOGRAMS
                .lock()
                .expect("histogram registry poisoned")
                .push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `b` (see [`HIST_BUCKETS`]).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets[b].load(Ordering::Relaxed)
    }

    /// Estimate the `p`-quantile (`p` in `[0, 1]`) of the recorded
    /// distribution. `None` when the histogram is empty. See
    /// [`estimate_percentile`] for the estimator's contract.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        estimate_percentile(
            self.count(),
            self.max(),
            (0..HIST_BUCKETS).map(|b| (b, self.bucket(b))),
            p,
        )
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Estimate a quantile from log₂ bucket occupancies.
///
/// `buckets` yields `(bucket index, occupancy)` pairs in ascending
/// index order (zero-occupancy pairs are allowed and skipped). The
/// target rank is `ceil(p·count)` clamped to `[1, count]`; inside the
/// hit bucket the estimate interpolates linearly across the bucket's
/// value range `[2^(b-1), 2^b)` — so single-value buckets (0 and 1)
/// are exact, and the estimate is monotonically non-decreasing in `p`.
/// The result is additionally clamped to the recorded maximum, which
/// keeps high quantiles honest when the top bucket is much wider than
/// the data in it. Returns `None` when `count` is zero.
pub fn estimate_percentile(
    count: u64,
    max: u64,
    buckets: impl IntoIterator<Item = (usize, u64)>,
    p: f64,
) -> Option<u64> {
    if count == 0 {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (b, n) in buckets {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            if b == 0 {
                return Some(0);
            }
            // Bucket b ≥ 1 spans [2^(b-1), 2^b): lo == width.
            let lo = 1u128 << (b - 1);
            let width = lo;
            let into = (rank - seen) as u128; // in [1, n]
            let est = lo + width * into / n as u128;
            let est = est.min(lo + width - 1) as u64;
            return Some(est.min(max));
        }
        seen += n;
    }
    // All occupancies exhausted below the rank (racy concurrent
    // snapshot): fall back to the recorded maximum.
    Some(max)
}

/// An owned, always-on histogram with the same log₂ buckets as
/// [`Histogram`].
///
/// Unlike the `static` instruments, a `LocalHistogram` is *not* gated
/// on the trace mode and never touches the global registry: it belongs
/// to whoever constructed it. The server uses these for the per-request
/// latency distributions its `stats` command must report regardless of
/// `REVKB_TRACE`, without draining (or perturbing) the shared
/// telemetry that table1/table2 runs rely on.
#[derive(Debug)]
pub struct LocalHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [BUCKET_ZERO; HIST_BUCKETS],
        }
    }

    /// Record one observation (always on).
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `b` (see [`HIST_BUCKETS`]).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets[b].load(Ordering::Relaxed)
    }

    /// Estimate the `p`-quantile; `None` when empty. Same estimator as
    /// [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> Option<u64> {
        estimate_percentile(
            self.count(),
            self.max(),
            (0..HIST_BUCKETS).map(|b| (b, self.bucket(b))),
            p,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceMode;

    // Tests here mutate the global mode; serialise them.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    static C: Counter = Counter::new("test.counter");
    static G: Gauge = Gauge::new("test.gauge");
    static H: Histogram = Histogram::new("test.hist");

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
    }

    #[test]
    fn percentile_exact_on_hand_built_distributions() {
        // All zeros: every quantile is exactly 0.
        let h = LocalHistogram::new();
        for _ in 0..100 {
            h.record(0);
        }
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), Some(0), "p={p}");
        }
        // All ones: bucket 1 holds exactly the value 1.
        let h = LocalHistogram::new();
        for _ in 0..7 {
            h.record(1);
        }
        for p in [0.01, 0.5, 0.99] {
            assert_eq!(h.percentile(p), Some(1), "p={p}");
        }
        // 90 fast (value 1) + 10 slow (value 1000): the p50 sits in the
        // fast bucket exactly, the p95+ in the slow one — and the slow
        // estimate is clamped to the recorded max.
        let h = LocalHistogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.percentile(0.5), Some(1));
        let p95 = h.percentile(0.95).unwrap();
        assert!((512..=1000).contains(&p95), "p95={p95}");
        assert_eq!(h.percentile(1.0), Some(1000));
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        // 4 values in bucket 3 ([4, 8)): interpolation steps through
        // the bucket's range monotonically and stays inside it.
        let h = LocalHistogram::new();
        for v in [4, 5, 6, 7] {
            h.record(v);
        }
        let q25 = h.percentile(0.25).unwrap();
        let q50 = h.percentile(0.5).unwrap();
        let q100 = h.percentile(1.0).unwrap();
        assert!((4..=7).contains(&q25), "q25={q25}");
        assert!(q25 <= q50 && q50 <= q100, "{q25} {q50} {q100}");
        assert_eq!(q100, 7);
    }

    #[test]
    fn percentile_is_monotone_and_none_when_empty() {
        let h = LocalHistogram::new();
        assert_eq!(h.percentile(0.5), None);
        for v in [0, 1, 3, 17, 400, 90_000, 12, 7, 7, 2_000_000] {
            h.record(v);
        }
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p95, "p50={p50} p95={p95}");
        assert!(p95 <= p99, "p95={p95} p99={p99}");
        assert!(p99 <= h.max());
        // Out-of-range p clamps instead of panicking.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn percentile_top_bucket_does_not_overflow() {
        let h = LocalHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let p50 = h.percentile(0.5).unwrap();
        let p100 = h.percentile(1.0).unwrap();
        assert!(p50 <= p100, "{p50} {p100}");
        assert_eq!(p100, u64::MAX);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Off);
        let before = C.value();
        C.add(5);
        C.inc();
        G.set(9);
        H.record(7);
        assert_eq!(C.value(), before);
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn enabled_records_and_registers() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::set_mode(TraceMode::Summary);
        C.reset();
        G.reset();
        H.reset();
        C.add(2);
        C.inc();
        G.set(4);
        G.set_max(2); // below current: keeps 4
        G.set_max(10);
        H.record(0);
        H.record(5);
        H.record(1000);
        assert_eq!(C.value(), 3);
        assert_eq!(G.value(), 10);
        assert_eq!(H.count(), 3);
        assert_eq!(H.sum(), 1005);
        assert_eq!(H.max(), 1000);
        assert_eq!(H.bucket(0), 1);
        assert_eq!(H.bucket(3), 1); // 5 ∈ [4, 8)
        assert_eq!(H.bucket(10), 1); // 1000 ∈ [512, 1024)
        assert!(COUNTERS
            .lock()
            .unwrap()
            .iter()
            .any(|c| c.name() == "test.counter"));
        assert!(GAUGES
            .lock()
            .unwrap()
            .iter()
            .any(|g| g.name() == "test.gauge"));
        assert!(HISTOGRAMS
            .lock()
            .unwrap()
            .iter()
            .any(|h| h.name() == "test.hist"));
        crate::set_mode(TraceMode::Off);
    }
}
