//! Differential tests: the incremental [`QuerySession`] must agree
//! with the one-shot [`revkb_sat::entails`] oracle on every query —
//! including after UNSAT queries (which exercise assumption-level
//! conflict analysis and clause learning) and across cache hits.

use revkb_sat::{pseudo_random_formula, QuerySession};

/// 40 random bases × 6 queries each = 240 differential cases, every
/// answer checked against the one-shot oracle on a fresh solver.
#[test]
fn session_agrees_with_one_shot_entails() {
    let mut seed = 0x5E55101u64;
    let mut cases = 0u32;
    for _ in 0..40 {
        let base = pseudo_random_formula(&mut seed, 4, 6);
        let mut session = QuerySession::with_query_alphabet(&base, 6);
        for _ in 0..6 {
            let q = pseudo_random_formula(&mut seed, 3, 6);
            let expected = revkb_sat::entails(&base, &q);
            assert_eq!(
                session.entails(&q),
                expected,
                "session diverged from one-shot on base {base:?}, query {q:?}"
            );
            cases += 1;
        }
        let stats = session.stats();
        assert_eq!(stats.base_loads, 1);
        assert_eq!(stats.solver_constructions, 1);
    }
    assert!(cases >= 200, "need ≥200 differential cases, ran {cases}");
}

/// Repeating every query must hit the cache and return the identical
/// answer; interleaved fresh queries must stay correct.
#[test]
fn cached_answers_match_recomputed_answers() {
    let mut seed = 0xCAC4E0u64;
    for _ in 0..10 {
        let base = pseudo_random_formula(&mut seed, 4, 5);
        let mut session = QuerySession::with_query_alphabet(&base, 5);
        let queries: Vec<_> = (0..8)
            .map(|_| pseudo_random_formula(&mut seed, 3, 5))
            .collect();
        let first: Vec<bool> = queries.iter().map(|q| session.entails(q)).collect();
        let misses = session.stats().cache_misses;
        let second: Vec<bool> = queries.iter().map(|q| session.entails(q)).collect();
        assert_eq!(first, second, "cache returned a different answer");
        assert_eq!(
            session.stats().cache_misses,
            misses,
            "second pass must be pure cache hits"
        );
        for q in &queries {
            assert_eq!(session.entails(q), revkb_sat::entails(&base, q));
        }
    }
}

/// After a query whose search ends UNSAT (an entailed query), the
/// session keeps answering correctly — the activation-literal
/// retirement must not poison the solver.
#[test]
fn correct_after_unsat_queries() {
    let mut seed = 0x0B5A7u64;
    let mut unsat_then_checked = 0u32;
    for _ in 0..30 {
        let base = pseudo_random_formula(&mut seed, 4, 5);
        let mut session = QuerySession::with_query_alphabet(&base, 5);
        let mut saw_entailed = false;
        for _ in 0..8 {
            let q = pseudo_random_formula(&mut seed, 3, 5);
            let expected = revkb_sat::entails(&base, &q);
            assert_eq!(session.entails(&q), expected);
            if saw_entailed {
                unsat_then_checked += 1;
            }
            saw_entailed |= expected;
        }
    }
    assert!(
        unsat_then_checked >= 20,
        "workload must actually exercise queries after an UNSAT search, \
         got {unsat_then_checked}"
    );
}

// The 1-solver-vs-N-solvers accounting test lives in its own test
// binary (`session_constructions.rs`): the process-wide construction
// counter cannot be measured exactly while sibling tests construct
// solvers on other threads.
