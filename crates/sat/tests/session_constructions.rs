//! Solver-construction accounting for [`QuerySession`].
//!
//! This file must hold exactly one test: [`revkb_sat::constructions`]
//! is a process-wide counter, and measuring exact deltas requires that
//! no sibling test constructs solvers concurrently. Each integration
//! test file is its own binary, so isolation is structural.

use revkb_sat::{pseudo_random_formula, QuerySession};

/// One session construction serves the whole workload: the solver
/// construction counter moves by exactly 1 for N queries, versus N for
/// the one-shot path — and the answers are identical.
#[test]
fn one_solver_for_n_queries() {
    let mut seed = 0x15010u64;
    let base = pseudo_random_formula(&mut seed, 4, 6);
    let queries: Vec<_> = (0..20)
        .map(|_| pseudo_random_formula(&mut seed, 3, 6))
        .collect();

    let before = revkb_sat::constructions();
    let mut session = QuerySession::with_query_alphabet(&base, 6);
    let incremental: Vec<bool> = queries.iter().map(|q| session.entails(q)).collect();
    let session_solvers = revkb_sat::constructions() - before;

    let before = revkb_sat::constructions();
    let one_shot: Vec<bool> = queries
        .iter()
        .map(|q| revkb_sat::entails(&base, q))
        .collect();
    let one_shot_solvers = revkb_sat::constructions() - before;

    assert_eq!(incremental, one_shot);
    assert_eq!(session_solvers, 1, "session builds exactly one solver");
    assert_eq!(
        one_shot_solvers,
        queries.len() as u64,
        "one-shot builds one solver per query"
    );
}
