//! Property tests for the CDCL solver: differential agreement with
//! truth tables on arbitrary formula shapes, model validity, and
//! assumption semantics.

use proptest::prelude::*;
use revkb_logic::{tt_entails, tt_equivalent, tt_satisfiable, Formula, Lit, Var};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        4 => (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Formula::lit(Var(v), pos)),
        1 => Just(Formula::True),
        1 => Just(Formula::False),
    ]
    .boxed();
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::and_all),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::or_all),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Solver and truth tables agree on satisfiability; reported
    /// models actually satisfy the formula.
    #[test]
    fn sat_agrees_with_truth_tables(f in formula_strategy(6, 4)) {
        let expected = tt_satisfiable(&f);
        prop_assert_eq!(revkb_sat::satisfiable(&f), expected);
        if expected {
            let m = revkb_sat::find_model(&f).expect("model exists");
            prop_assert!(f.eval(&m));
        } else {
            prop_assert!(revkb_sat::find_model(&f).is_none());
        }
    }

    /// Entailment and equivalence agree with truth tables.
    #[test]
    fn consequence_agrees(a in formula_strategy(5, 3), b in formula_strategy(5, 3)) {
        prop_assert_eq!(revkb_sat::entails(&a, &b), tt_entails(&a, &b));
        prop_assert_eq!(revkb_sat::equivalent(&a, &b), tt_equivalent(&a, &b));
    }

    /// Assumptions behave as added unit clauses (without persisting).
    /// The Tseitin gate letters must start above every letter the
    /// assumption may touch, not just above V(f).
    #[test]
    fn assumptions_are_temporary_units(f in formula_strategy(5, 3), idx in 0u32..5, pos in any::<bool>()) {
        let mut supply = revkb_logic::CountingSupply::new(10);
        let mut solver = revkb_sat::solver_for(&f, &mut supply);
        solver.ensure_var(Var(idx));
        let lit = Lit::new(Var(idx), pos);
        let with_assumption = solver.solve_with_assumptions(&[lit]);
        let unit = Formula::lit(Var(idx), pos);
        let expected = tt_satisfiable(&f.clone().and(unit));
        prop_assert_eq!(with_assumption, expected);
        // The assumption does not persist.
        prop_assert_eq!(solver.solve(), tt_satisfiable(&f));
    }

    /// All-SAT enumerates exactly the truth-table models.
    #[test]
    fn all_models_exact(f in formula_strategy(4, 3)) {
        let models = revkb_sat::all_models(&f, 1 << 12).expect("within limit");
        let vars: Vec<Var> = f.vars().into_iter().collect();
        let alpha = revkb_logic::Alphabet::new(vars);
        prop_assert_eq!(models.len(), alpha.models(&f).len());
        for m in &models {
            prop_assert!(f.eval(m));
        }
    }
}
