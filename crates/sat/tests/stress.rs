//! Solver stress tests: structured hard instances (pigeonhole),
//! differential validation against brute force at the largest
//! enumerable sizes, and incremental-use torture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revkb_logic::{Formula, Lit, Var};
use revkb_sat::Solver;

/// Pigeonhole CNF: `pigeons` into `holes`. Unsatisfiable iff
/// `pigeons > holes` — resolution-hard, a classic solver workout.
fn pigeonhole(solver: &mut Solver, pigeons: u32, holes: u32) {
    let var = |p: u32, h: u32| Var(p * holes + h);
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
        solver.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                solver.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
}

#[test]
fn pigeonhole_unsat_up_to_7() {
    for holes in 2..=6u32 {
        let mut s = Solver::new();
        pigeonhole(&mut s, holes + 1, holes);
        assert!(!s.solve(), "PHP({},{}) should be UNSAT", holes + 1, holes);
    }
}

#[test]
fn pigeonhole_sat_when_enough_holes() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 5, 5);
    assert!(s.solve());
    // The model must be a valid assignment: every pigeon placed, no
    // hole shared.
    let var = |p: u32, h: u32| Var(p * 5 + h);
    for p in 0..5 {
        assert!(
            (0..5).any(|h| s.model_value(var(p, h))),
            "pigeon {p} unplaced"
        );
    }
    for h in 0..5 {
        let count = (0..5).filter(|&p| s.model_value(var(p, h))).count();
        assert!(count <= 1, "hole {h} shared");
    }
}

/// Random 3-CNF near the phase transition, cross-checked against
/// brute force over 12 variables (4096 assignments) — 300 instances.
#[test]
fn random_3sat_differential() {
    let mut rng = StdRng::seed_from_u64(0x5A7);
    let n = 12u32;
    for round in 0..300 {
        let m = 30 + (round % 40); // densities straddling the threshold
        let mut clauses: Vec<[i64; 3]> = Vec::with_capacity(m);
        for _ in 0..m {
            let mut vars = [0u32; 3];
            let mut k = 0;
            while k < 3 {
                let v = rng.gen_range(0..n);
                if !vars[..k].contains(&v) {
                    vars[k] = v;
                    k += 1;
                }
            }
            clauses.push([
                (vars[0] as i64 + 1) * if rng.gen_bool(0.5) { 1 } else { -1 },
                (vars[1] as i64 + 1) * if rng.gen_bool(0.5) { 1 } else { -1 },
                (vars[2] as i64 + 1) * if rng.gen_bool(0.5) { 1 } else { -1 },
            ]);
        }
        // Brute force.
        let brute = (0..1u64 << n).any(|assignment| {
            clauses.iter().all(|c| {
                c.iter().any(|&lit| {
                    let v = lit.unsigned_abs() - 1;
                    (assignment >> v & 1 == 1) == (lit > 0)
                })
            })
        });
        // Solver.
        let mut s = Solver::new();
        for c in &clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&lit| Lit::new(Var(lit.unsigned_abs() as u32 - 1), lit > 0))
                .collect();
            s.add_clause(&lits);
        }
        let got = s.solve();
        assert_eq!(got, brute, "divergence on round {round}");
        if got {
            // The reported model must satisfy every clause.
            for c in &clauses {
                assert!(
                    c.iter().any(|&lit| {
                        s.model_value(Var(lit.unsigned_abs() as u32 - 1)) == (lit > 0)
                    }),
                    "model violates a clause on round {round}"
                );
            }
        }
    }
}

/// Incremental torture: alternate assumption solving, clause addition
/// and full solving on one solver instance.
#[test]
fn incremental_torture() {
    let mut rng = StdRng::seed_from_u64(0x10C);
    let n = 30u32;
    let mut s = Solver::new();
    // Seed with implications forming a ring.
    for i in 0..n {
        s.add_clause(&[Lit::neg(Var(i)), Lit::pos(Var((i + 1) % n))]);
    }
    let mut expected_sat = true;
    for round in 0..200 {
        match round % 3 {
            0 => {
                let a = Var(rng.gen_range(0..n));
                let sat = s.solve_with_assumptions(&[Lit::pos(a)]);
                if expected_sat {
                    // Positive assumption forces the whole ring true —
                    // consistent unless a negative unit was added.
                    let _ = sat;
                }
            }
            1 => {
                let _ = s.solve();
            }
            _ => {
                // Add a random (wide, satisfiable-ish) clause.
                let lits: Vec<Lit> = (0..3)
                    .map(|_| Lit::new(Var(rng.gen_range(0..n)), rng.gen_bool(0.7)))
                    .collect();
                if !s.add_clause(&lits) {
                    expected_sat = false;
                }
            }
        }
    }
    // The solver must still be in a coherent state.
    let final_sat = s.solve();
    if !expected_sat {
        assert!(!final_sat);
    }
}

/// Formula-level entailment at a size where Tseitin + CDCL does real
/// work: chains of implications with noise.
#[test]
fn long_implication_chains() {
    let n = 200u32;
    let chain = Formula::and_all(
        (0..n - 1).map(|i| Formula::var(Var(i)).implies(Formula::var(Var(i + 1)))),
    );
    let premise = chain.clone().and(Formula::var(Var(0)));
    assert!(revkb_sat::entails(&premise, &Formula::var(Var(n - 1))));
    assert!(!revkb_sat::entails(&chain, &Formula::var(Var(n - 1))));
    // Breaking one link breaks the entailment.
    let broken = chain.and(Formula::var(Var(n / 2)).not());
    assert!(!revkb_sat::satisfiable(
        &broken.clone().and(Formula::var(Var(0)))
    ));
}
