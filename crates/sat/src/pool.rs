//! A sharded pool of [`QuerySession`]s for batch entailment.
//!
//! The paper's pipeline amortises one compilation of `T * P` across
//! many queries; [`QuerySession`] already amortises the Tseitin load
//! and the learned clauses across a *sequential* query stream. This
//! module adds the remaining axis: **parallelism across queries**.
//! A [`SessionPool`] owns one session per worker thread, all loaded
//! from the same compiled base, and answers a batch by sharding it
//! over the workers with a simple atomic work queue
//! ([`SessionPool::par_entails_batch`]). Small batches fall back to
//! the sequential path automatically — spawning threads for three
//! queries costs more than it saves.
//!
//! Answers are **bit-identical** to the sequential path by
//! construction: every worker session is loaded from the same base,
//! entailment is a semantic property of that base, and each answer is
//! written to the slot of its query index — the shard assignment can
//! never change an answer or its position.
//!
//! Worker counts come from [`PoolConfig`]; the default reads the
//! `REVKB_THREADS` environment variable and falls back to
//! [`std::thread::available_parallelism`].
//!
//! Statistics: [`PoolStats`] keeps the per-worker [`SolverStats`]
//! blocks and distinguishes **CPU time** (the sum of per-worker busy
//! time, which double-counts overlapping intervals) from **wall
//! time** (measured elapsed time across batch calls) — see
//! [`SolverStats::merge`] for why the two must not be conflated.

use crate::session::{QuerySession, SolverStats};
use revkb_logic::Formula;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "REVKB_THREADS";

/// The default worker count: `REVKB_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (1 if even
/// that is unknown).
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Tuning knobs for a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker sessions to build (clamped to at least 1).
    pub threads: usize,
    /// Batches with fewer queries than this are answered sequentially
    /// on one worker — thread spawn and hand-off overhead dwarfs the
    /// solve time of a handful of small queries.
    pub sequential_threshold: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: default_threads(),
            sequential_threshold: 8,
        }
    }
}

impl PoolConfig {
    /// A config with the given worker count and the default threshold.
    pub fn with_threads(threads: usize) -> Self {
        PoolConfig {
            threads,
            ..PoolConfig::default()
        }
    }
}

/// Aggregated statistics of a [`SessionPool`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker sessions in the pool.
    pub threads: usize,
    /// Batch calls answered (sequential + parallel).
    pub batches: u64,
    /// Batch calls that ran on the parallel path.
    pub parallel_batches: u64,
    /// Batch calls that fell back to the sequential path.
    pub sequential_batches: u64,
    /// Queries answered across all batches.
    pub queries: u64,
    /// Measured elapsed time across batch calls, in microseconds.
    /// This is real wall-clock time: concurrent worker activity is
    /// counted once.
    pub wall_time_micros: u64,
    /// Elapsed time of the most recent batch call, in microseconds.
    pub last_batch_wall_micros: u64,
    /// Per-worker session counters.
    pub per_worker: Vec<SolverStats>,
}

impl PoolStats {
    /// All per-worker counters folded into one block. Its
    /// `total_query_micros` is the **CPU-time total** (summed busy
    /// time, overlapping intervals double-counted); compare it with
    /// [`PoolStats::wall_time_micros`] to see the parallel speed-up.
    pub fn merged(&self) -> SolverStats {
        let mut merged = SolverStats::default();
        for w in &self.per_worker {
            merged.merge(w);
        }
        merged
    }

    /// Summed per-worker busy time, in microseconds (CPU-style
    /// accounting; ≥ wall time whenever workers overlap).
    pub fn cpu_time_total_micros(&self) -> u64 {
        self.merged().total_query_micros
    }

    /// Render as a JSON object (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        let per_worker = self
            .per_worker
            .iter()
            .map(SolverStats::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"threads\":{},\"batches\":{},\"parallel_batches\":{},\
             \"sequential_batches\":{},\"queries\":{},\
             \"cpu_time_total_micros\":{},\"wall_time_micros\":{},\
             \"last_batch_wall_micros\":{},\"merged\":{},\
             \"per_worker\":[{}]}}",
            self.threads,
            self.batches,
            self.parallel_batches,
            self.sequential_batches,
            self.queries,
            self.cpu_time_total_micros(),
            self.wall_time_micros,
            self.last_batch_wall_micros,
            self.merged().to_json(),
            per_worker,
        )
    }
}

/// A pool of worker [`QuerySession`]s over one compiled base.
///
/// ```
/// use revkb_logic::{Formula, Var};
/// use revkb_sat::{PoolConfig, SessionPool};
///
/// let v = |i| Formula::var(Var(i));
/// let base = v(0).and(v(1)).and(v(2));
/// let mut pool = SessionPool::with_config(
///     &base,
///     PoolConfig { threads: 4, sequential_threshold: 2 },
/// );
/// let queries: Vec<Formula> = (0..3).map(v).collect();
/// assert_eq!(pool.par_entails_batch(&queries), vec![true, true, true]);
/// let stats = pool.stats();
/// assert_eq!(stats.threads, 4);
/// assert_eq!(stats.queries, 3);
/// ```
#[derive(Debug)]
pub struct SessionPool {
    workers: Vec<QuerySession>,
    sequential_threshold: usize,
    batches: u64,
    parallel_batches: u64,
    sequential_batches: u64,
    queries: u64,
    wall_time_micros: u64,
    last_batch_wall_micros: u64,
}

impl SessionPool {
    /// A pool over `base` with the default configuration
    /// (`REVKB_THREADS` / available parallelism).
    pub fn new(base: &Formula) -> Self {
        Self::with_config(base, PoolConfig::default())
    }

    /// A pool over `base` with an explicit configuration.
    pub fn with_config(base: &Formula, config: PoolConfig) -> Self {
        Self::build(QuerySession::new(base), config)
    }

    /// Like [`SessionPool::with_config`], additionally reserving
    /// `Var(0) .. Var(num_query_vars)` for queries (see
    /// [`QuerySession::with_query_alphabet`]).
    pub fn with_query_alphabet(base: &Formula, num_query_vars: u32, config: PoolConfig) -> Self {
        Self::build(
            QuerySession::with_query_alphabet(base, num_query_vars),
            config,
        )
    }

    fn build(first: QuerySession, config: PoolConfig) -> Self {
        let threads = config.threads.max(1);
        // The base is Tseitin-transformed exactly once; the other
        // workers clone the loaded solver instead of re-encoding.
        let mut workers = Vec::with_capacity(threads);
        workers.push(first);
        for _ in 1..threads {
            workers.push(workers[0].clone());
        }
        SessionPool {
            workers,
            sequential_threshold: config.sequential_threshold,
            batches: 0,
            parallel_batches: 0,
            sequential_batches: 0,
            queries: 0,
            wall_time_micros: 0,
            last_batch_wall_micros: 0,
        }
    }

    /// Worker sessions in the pool.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Answer a batch sequentially on the first worker. The answer at
    /// index `i` is for `queries[i]`.
    ///
    /// # Panics
    ///
    /// As [`QuerySession::entails`]: if a query collides with the
    /// base's internal Tseitin letters.
    pub fn entails_batch(&mut self, queries: &[Formula]) -> Vec<bool> {
        let _span = revkb_obs::span("sat.pool.batch");
        let start = Instant::now();
        let answers = queries.iter().map(|q| self.workers[0].entails(q)).collect();
        self.sequential_batches += 1;
        self.finish_batch(start, queries.len());
        answers
    }

    /// Answer a batch in parallel: the queries are sharded over the
    /// workers through an atomic work queue, so a slow query on one
    /// worker does not hold up the rest of the batch. The answer at
    /// index `i` is for `queries[i]`, exactly as in
    /// [`SessionPool::entails_batch`] — parallelism never changes an
    /// answer or its position.
    ///
    /// Batches smaller than the configured `sequential_threshold`
    /// (and every batch on a 1-thread pool) take the sequential path.
    ///
    /// # Panics
    ///
    /// As [`QuerySession::entails`]: if a query collides with the
    /// base's internal Tseitin letters.
    pub fn par_entails_batch(&mut self, queries: &[Formula]) -> Vec<bool> {
        if self.workers.len() == 1 || queries.len() < self.sequential_threshold {
            return self.entails_batch(queries);
        }
        let _span = revkb_obs::span("sat.pool.batch");
        let start = Instant::now();
        let next = AtomicUsize::new(0);
        let mut answers = vec![false; queries.len()];
        let per_worker: Vec<Vec<(usize, bool)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .map(|worker| {
                    let next = &next;
                    scope.spawn(move || {
                        let _span = revkb_obs::span("sat.pool.worker");
                        let mut taken = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            taken.push((i, worker.entails(&queries[i])));
                        }
                        taken
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(taken) => taken,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for (i, answer) in per_worker.into_iter().flatten() {
            answers[i] = answer;
        }
        self.parallel_batches += 1;
        self.finish_batch(start, queries.len());
        answers
    }

    fn finish_batch(&mut self, start: Instant, queries: usize) {
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.batches += 1;
        self.queries += queries as u64;
        self.wall_time_micros += micros;
        self.last_batch_wall_micros = micros;
    }

    /// Current pool statistics (per-worker blocks plus batch and
    /// wall-time accounting).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.workers.len(),
            batches: self.batches,
            parallel_batches: self.parallel_batches,
            sequential_batches: self.sequential_batches,
            queries: self.queries,
            wall_time_micros: self.wall_time_micros,
            last_batch_wall_micros: self.last_batch_wall_micros,
            per_worker: self.workers.iter().map(QuerySession::stats).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::pseudo_random_formula;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn forced_parallel(threads: usize) -> PoolConfig {
        PoolConfig {
            threads,
            sequential_threshold: 0,
        }
    }

    #[test]
    fn parallel_matches_sequential_on_random_batch() {
        let base = v(0).implies(v(1)).and(v(0)).and(v(2).or(v(3)));
        let mut seed = 0x9001u64;
        let queries: Vec<Formula> = (0..64)
            .map(|_| pseudo_random_formula(&mut seed, 3, 4))
            .collect();
        let mut seq_pool = SessionPool::with_config(&base, PoolConfig::with_threads(1));
        let mut par_pool = SessionPool::with_config(&base, forced_parallel(4));
        let seq = seq_pool.entails_batch(&queries);
        let par = par_pool.par_entails_batch(&queries);
        assert_eq!(seq, par, "parallel path changed an answer");
        // Cross-check a few against the one-shot path.
        for (q, &a) in queries.iter().zip(&seq).take(8) {
            assert_eq!(a, crate::entails(&base, q), "one-shot disagrees on {q:?}");
        }
    }

    #[test]
    fn small_batch_falls_back_to_sequential() {
        let mut pool = SessionPool::with_config(
            &v(0).and(v(1)),
            PoolConfig {
                threads: 4,
                sequential_threshold: 8,
            },
        );
        let queries = vec![v(0), v(1).not()];
        assert_eq!(pool.par_entails_batch(&queries), vec![true, false]);
        let stats = pool.stats();
        assert_eq!(stats.sequential_batches, 1);
        assert_eq!(stats.parallel_batches, 0);
        // Only worker 0 saw the queries.
        assert_eq!(stats.per_worker[0].queries, 2);
        assert!(stats.per_worker[1..].iter().all(|w| w.queries == 0));
    }

    #[test]
    fn one_thread_pool_never_spawns() {
        let mut pool = SessionPool::with_config(&v(0), forced_parallel(1));
        let queries: Vec<Formula> = (0..20).map(|_| v(0)).collect();
        assert!(pool.par_entails_batch(&queries).iter().all(|&a| a));
        let stats = pool.stats();
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.sequential_batches, 1);
    }

    #[test]
    fn stats_account_batches_and_queries() {
        let base = v(0).and(v(1));
        let mut pool = SessionPool::with_config(&base, forced_parallel(3));
        let queries: Vec<Formula> = (0..30).map(|i| v(i % 2)).collect();
        pool.par_entails_batch(&queries);
        pool.entails_batch(&queries[..5]);
        let stats = pool.stats();
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.parallel_batches, 1);
        assert_eq!(stats.sequential_batches, 1);
        assert_eq!(stats.queries, 35);
        let merged = stats.merged();
        assert_eq!(merged.queries, 35);
        // Every worker keeps its own Tseitin-loaded copy of the base.
        assert_eq!(merged.base_loads, 3);
        // CPU total sums worker busy time; wall time is measured once.
        assert_eq!(
            stats.cpu_time_total_micros(),
            merged.total_query_micros,
            "cpu_time_total is the merged busy-time sum"
        );
    }

    #[test]
    fn unsat_base_is_parallel_safe() {
        let base = v(0).and(v(0).not());
        let mut pool = SessionPool::with_config(&base, forced_parallel(4));
        let queries: Vec<Formula> = (0..16)
            .map(|i| if i % 2 == 0 { v(0) } else { v(0).not() })
            .collect();
        assert!(
            pool.par_entails_batch(&queries).iter().all(|&a| a),
            "⊥ entails everything, on every worker"
        );
    }

    #[test]
    fn pool_stats_json_shape() {
        let mut pool = SessionPool::with_config(&v(0), PoolConfig::with_threads(2));
        pool.entails_batch(&[v(0)]);
        let j = pool.stats().to_json();
        for key in [
            "\"threads\":2",
            "\"batches\":1",
            "\"parallel_batches\":0",
            "\"sequential_batches\":1",
            "\"queries\":1",
            "\"cpu_time_total_micros\":",
            "\"wall_time_micros\":",
            "\"merged\":{",
            "\"per_worker\":[{",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn threshold_boundary_is_parallel() {
        let base = v(0).and(v(1));
        let mut pool = SessionPool::with_config(
            &base,
            PoolConfig {
                threads: 2,
                sequential_threshold: 4,
            },
        );
        let queries: Vec<Formula> = (0..4).map(|i| v(i % 2)).collect();
        pool.par_entails_batch(&queries);
        let stats = pool.stats();
        assert_eq!(
            stats.parallel_batches, 1,
            "a batch exactly at the threshold runs in parallel"
        );
    }
}
