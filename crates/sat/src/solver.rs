//! A CDCL SAT solver in the MiniSat lineage: two-watched-literal
//! propagation, first-UIP clause learning with local minimisation,
//! EVSIDS variable activities, Luby restarts, phase saving, learnt-DB
//! reduction, and incremental solving under assumptions.
//!
//! The revision machinery issues thousands of entailment, consistency
//! and minimum-distance probes (`T' ⊨ Q`, `T' ∪ {P} ⊭ ⊥`,
//! `T[X/Y] ∧ P ∧ EXA(d,…)` satisfiable?); this solver is the substrate
//! for all of them.

use crate::heap::ActivityHeap;
use revkb_logic::{Clause, Cnf, Lit, Var};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`Solver`] constructions, for measuring how
/// many solvers a query path builds (the incremental `QuerySession`
/// builds one; the one-shot API builds one per call).
static CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Total number of [`Solver`]s constructed by this process so far.
pub fn constructions() -> u64 {
    CONSTRUCTIONS.load(Ordering::Relaxed)
}

/// Three-valued assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

const NO_REASON: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

#[derive(Debug, Clone, Copy)]
struct ClauseHeader {
    learnt: bool,
    deleted: bool,
    activity: f64,
}

/// Solver statistics, cumulative across `solve` calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by DB reduction.
    pub learnts_removed: u64,
}

/// The CDCL solver.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    headers: Vec<ClauseHeader>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: ActivityHeap,
    var_inc: f64,
    cla_inc: f64,
    ok: bool,
    seen: Vec<bool>,
    num_learnts: usize,
    max_learnts: usize,
    stored_model: Vec<bool>,
    /// Statistics.
    pub stats: Stats,
}

/// Outcome of a bounded CDCL search pass.
enum SearchResult {
    Sat,
    Unsat,
    Restart,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// A fresh, empty solver.
    pub fn new() -> Self {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Self {
            clauses: Vec::new(),
            headers: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: ActivityHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            seen: Vec::new(),
            num_learnts: 0,
            max_learnts: 2000,
            stored_model: Vec::new(),
            stats: Stats::default(),
        }
    }

    /// Number of variables the solver knows about.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Make sure variable `v` exists.
    pub fn ensure_var(&mut self, v: Var) {
        let need = v.index() + 1;
        while self.assigns.len() < need {
            self.assigns.push(LBool::Undef);
            self.polarity.push(false);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
        }
        self.heap.grow_to(need);
    }

    /// Current value of a variable.
    pub fn value_var(&self, v: Var) -> LBool {
        self.assigns.get(v.index()).copied().unwrap_or(LBool::Undef)
    }

    /// Current value of a literal.
    pub fn value_lit(&self, l: Lit) -> LBool {
        match self.value_var(l.var()) {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Returns `false` if the solver becomes trivially
    /// unsatisfiable. Must be called at decision level 0 (which is
    /// always the case between `solve` calls).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if !self.ok {
            return false;
        }
        for &l in lits {
            self.ensure_var(l.var());
        }
        // Sort, dedup, drop level-0-false literals, detect tautology /
        // level-0-true literals.
        let mut c: Clause = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Clause = Vec::with_capacity(c.len());
        let mut i = 0;
        while i < c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == l.negated() {
                return true; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(out, false);
                true
            }
        }
    }

    /// Add every clause of a CNF.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        if cnf.num_vars > 0 {
            self.ensure_var(Var(cnf.num_vars - 1));
        }
        for c in &cnf.clauses {
            if !self.add_clause(c) {
                return false;
            }
        }
        true
    }

    fn attach_clause(&mut self, lits: Clause, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[lits[0].negated().code()].push(w0);
        self.watches[lits[1].negated().code()].push(w1);
        self.clauses.push(lits);
        self.headers.push(ClauseHeader {
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.num_learnts += 1;
        }
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.polarity[v.index()] = l.is_positive();
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    /// Propagate queued assignments. Returns the conflicting clause
    /// reference, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<u32> = None;

            'watchers: while i < ws.len() {
                let w = ws[i];
                // Fast path: blocker already true.
                if self.value_lit(w.blocker) == LBool::True {
                    ws[j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.headers[cref].deleted {
                    i += 1; // drop stale watcher
                    continue;
                }
                // Make sure the false literal is at position 1.
                let false_lit = p.negated();
                {
                    let c = &mut self.clauses[cref];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                    debug_assert_eq!(c[1], false_lit);
                }
                let first = self.clauses[cref][0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    i += 1;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref].len();
                for k in 2..len {
                    let lk = self.clauses[cref][k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cref].swap(1, k);
                        self.watches[lk.negated().code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        i += 1;
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                i += 1;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: copy remaining watchers and bail.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        i += 1;
                        j += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                } else {
                    self.unchecked_enqueue(first, w.cref);
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Clause, u32) {
        let mut learnt: Clause = vec![Lit::from_code(0)]; // placeholder
        let mut path_c: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current_level = self.decision_level();
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            debug_assert_ne!(confl, NO_REASON);
            let cref = confl as usize;
            if self.headers[cref].learnt {
                self.bump_clause(cref);
            }
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cref].len() {
                let q = self.clauses[cref][k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            path_c -= 1;
            if path_c == 0 {
                learnt[0] = lit.negated();
                break;
            }
            confl = self.reason[lit.var().index()];
        }

        // Local minimisation: drop literals whose reason is covered by
        // the rest of the clause.
        let mut minimized: Clause = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_redundant(l) {
                minimized.push(l);
            }
        }
        let mut learnt = minimized;

        // Clear seen flags.
        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Find backtrack level: highest level among learnt[1..].
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack)
    }

    /// A learnt literal is redundant if its reason clause's other
    /// literals are all seen or at level 0 (single-step minimisation).
    fn literal_redundant(&self, l: Lit) -> bool {
        let r = self.reason[l.var().index()];
        if r == NO_REASON {
            return false;
        }
        let clause = &self.clauses[r as usize];
        clause.iter().skip(1).all(|&q| {
            let v = q.var();
            self.seen[v.index()] || self.level[v.index()] == 0
        })
    }

    fn bump_var(&mut self, v: Var) {
        if self.heap.bump(v, self.var_inc) > 1e100 {
            self.heap.rescale(1e100);
            self.var_inc /= 1e100;
        }
    }

    fn bump_clause(&mut self, cref: usize) {
        self.headers[cref].activity += self.cla_inc;
        if self.headers[cref].activity > 1e20 {
            for h in &mut self.headers {
                h.activity /= 1e20;
            }
            self.cla_inc /= 1e20;
        }
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = NO_REASON;
            self.heap.insert(v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop() {
            if self.value_var(v) == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Remove the lower-activity half of the learnt clauses (keeping
    /// reasons and binary clauses), then rebuild all watch lists.
    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                self.headers[i].learnt && !self.headers[i].deleted && self.clauses[i].len() > 2
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.headers[a]
                .activity
                .partial_cmp(&self.headers[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != NO_REASON)
            .collect();
        let remove_count = learnt_refs.len() / 2;
        for &i in learnt_refs.iter().take(remove_count) {
            if locked.contains(&(i as u32)) {
                continue;
            }
            self.headers[i].deleted = true;
            self.num_learnts -= 1;
            self.stats.learnts_removed += 1;
        }
        // Rebuild watches from scratch, dropping deleted clauses.
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            if self.headers[i].deleted {
                continue;
            }
            let c = &self.clauses[i];
            self.watches[c[0].negated().code()].push(Watcher {
                cref: i as u32,
                blocker: c[1],
            });
            self.watches[c[1].negated().code()].push(Watcher {
                cref: i as u32,
                blocker: c[0],
            });
        }
    }

    /// CDCL search with a conflict budget.
    fn search(&mut self, budget: u64, assumptions: &[Lit]) -> SearchResult {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl);
                // Backjumping may land inside the assumption prefix;
                // the decision loop below re-establishes the remaining
                // assumptions, so this is sound.
                self.cancel_until(backtrack);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let cref = self.attach_clause(learnt, true);
                    let first = self.clauses[cref as usize][0];
                    self.unchecked_enqueue(first, cref);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts = self.max_learnts * 11 / 10;
                }
            } else {
                if conflicts >= budget {
                    self.cancel_until(0);
                    return SearchResult::Restart;
                }
                // Extend with assumptions first.
                let mut next_decision: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already satisfied: dummy level keeps the
                            // level ↔ assumption-index correspondence.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            return SearchResult::Unsat;
                        }
                        LBool::Undef => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => Some(a),
                    None => self
                        .pick_branch_var()
                        .map(|v| Lit::new(v, self.polarity[v.index()])),
                };
                match decision {
                    None => return SearchResult::Sat, // all assigned
                    Some(d) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.unchecked_enqueue(d, NO_REASON);
                    }
                }
            }
        }
    }

    /// Solve the current clause set. Leaves the solver reusable.
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Alias for [`Solver::solve_under_assumptions`] (historical name).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_under_assumptions(assumptions)
    }

    /// Solve under unit assumptions, keeping all learned clauses for
    /// later calls. The assumptions are propagated as pseudo-decisions
    /// below any real decision; on return the solver is back at the
    /// root level and immediately reusable (incremental solving).
    /// Returns satisfiability; on SAT the model is available through
    /// [`Solver::model`] / [`Solver::model_value`] until the next
    /// mutation.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        for &a in assumptions {
            self.ensure_var(a.var());
        }
        // Level-0 propagation of anything pending.
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        let mut restart = 0u32;
        loop {
            let budget = 100 * luby(restart) as u64;
            match self.search(budget, assumptions) {
                SearchResult::Sat => {
                    // Snapshot the model, then return to the root level
                    // so the solver can be mutated immediately
                    // (all-SAT blocking clauses rely on this).
                    self.stored_model = self.assigns.iter().map(|&a| a == LBool::True).collect();
                    self.cancel_until(0);
                    return true;
                }
                SearchResult::Unsat => {
                    self.cancel_until(0);
                    return false;
                }
                SearchResult::Restart => {
                    self.stats.restarts += 1;
                    restart += 1;
                }
            }
        }
    }

    /// The model found by the last successful `solve*` call: a value
    /// for every variable (unconstrained variables default to false).
    pub fn model(&self) -> Vec<bool> {
        let mut m = self.stored_model.clone();
        m.resize(self.num_vars(), false);
        m
    }

    /// Model value of one variable from the last successful solve
    /// (false when unconstrained or unknown).
    pub fn model_value(&self, v: Var) -> bool {
        self.stored_model.get(v.index()).copied().unwrap_or(false)
    }

    /// True if no contradiction has been derived at level 0.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Number of learned clauses currently in the database.
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Number of clauses (original + learned, minus deleted) in the
    /// database.
    pub fn num_clauses(&self) -> usize {
        self.headers.iter().filter(|h| !h.deleted).count()
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
pub fn luby(mut i: u32) -> u32 {
    // Find the finite subsequence containing index i, then recurse.
    let mut k = 1u32;
    loop {
        let len = (1u32 << k) - 1;
        if i + 1 == len {
            return 1 << (k - 1);
        }
        if i + 1 < len {
            i -= (1 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Lit;

    fn pos(i: u32) -> Lit {
        Lit::pos(Var(i))
    }
    fn neg(i: u32) -> Lit {
        Lit::neg(Var(i))
    }

    #[test]
    fn luby_sequence() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u32> = (0..15).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        s.add_clause(&[pos(0)]);
        assert!(s.solve());
        assert!(s.model_value(Var(0)));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[pos(0)]);
        assert!(!s.add_clause(&[neg(0)]));
        assert!(!s.solve());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert!(!s.solve());
    }

    #[test]
    fn no_clauses_sat() {
        let mut s = Solver::new();
        assert!(s.solve());
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        assert!(s.add_clause(&[pos(0), neg(0)]));
        assert!(s.solve());
    }

    #[test]
    fn propagation_chain() {
        // x0, x0→x1, x1→x2, x2→x3 forces all true.
        let mut s = Solver::new();
        s.add_clause(&[pos(0)]);
        s.add_clause(&[neg(0), pos(1)]);
        s.add_clause(&[neg(1), pos(2)]);
        s.add_clause(&[neg(2), pos(3)]);
        assert!(s.solve());
        for i in 0..4 {
            assert!(s.model_value(Var(i)));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p_ij = pigeon i in hole j (var 2i + j).
        let mut s = Solver::new();
        for i in 0..3u32 {
            s.add_clause(&[pos(2 * i), pos(2 * i + 1)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[neg(2 * i1 + j), neg(2 * i2 + j)]);
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn assumptions_sat_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[pos(0), pos(1)]);
        assert!(s.solve_with_assumptions(&[neg(0)]));
        assert!(s.model_value(Var(1)));
        assert!(!s.solve_with_assumptions(&[neg(0), neg(1)]));
        // Solver survives and is reusable.
        assert!(s.solve());
        assert!(s.solve_with_assumptions(&[pos(0)]));
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        s.add_clause(&[pos(0), pos(1)]);
        assert!(!s.solve_with_assumptions(&[pos(2), neg(2)]));
        assert!(s.solve());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        s.add_clause(&[pos(0), pos(1)]);
        assert!(s.solve());
        s.add_clause(&[neg(0)]);
        assert!(s.solve());
        assert!(s.model_value(Var(1)));
        s.add_clause(&[neg(1)]);
        assert!(!s.solve());
    }

    #[test]
    fn xor_chain_forced() {
        // CNF of x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1 → x1 = 0, x2 = 1.
        let mut s = Solver::new();
        // x0 ⊕ x1: (x0∨x1) ∧ (¬x0∨¬x1)
        s.add_clause(&[pos(0), pos(1)]);
        s.add_clause(&[neg(0), neg(1)]);
        s.add_clause(&[pos(1), pos(2)]);
        s.add_clause(&[neg(1), neg(2)]);
        s.add_clause(&[pos(0)]);
        assert!(s.solve());
        assert!(s.model_value(Var(0)));
        assert!(!s.model_value(Var(1)));
        assert!(s.model_value(Var(2)));
    }
}
