//! All-SAT: enumerate the models of a formula projected onto a chosen
//! sub-alphabet, by repeated solving with blocking clauses.
//!
//! Projection is what query equivalence (the paper's criterion (1))
//! needs: a compact representation `T'` uses fresh letters `Y/Z/W`, and
//! its consequences over the base alphabet `X` are determined by the
//! projection of `M(T')` onto `X`.

use crate::solver::Solver;
use revkb_logic::{tseitin, Formula, Interpretation, Lit, Var};
use std::collections::BTreeSet;

/// Enumerate models of `f` projected onto `vars` (deduplicated), up to
/// `limit` models. Returns `None` if the limit was hit (result
/// incomplete), `Some(models)` otherwise.
pub fn models_projected(f: &Formula, vars: &[Var], limit: usize) -> Option<Vec<Interpretation>> {
    // The watermark must clear both the formula's letters and the
    // projection letters — auxiliary Tseitin letters colliding with a
    // projection letter would corrupt the projection.
    let watermark = f
        .vars()
        .iter()
        .chain(vars.iter())
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let mut supply = revkb_logic::CountingSupply::new(watermark);
    let cnf = tseitin(f, &mut supply);
    let mut solver = Solver::new();
    if !solver.add_cnf(&cnf) {
        return Some(Vec::new());
    }
    for &v in vars {
        solver.ensure_var(v);
    }
    let mut out = Vec::new();
    while solver.solve() {
        if out.len() >= limit {
            return None;
        }
        let model: Interpretation = vars
            .iter()
            .copied()
            .filter(|&v| solver.model_value(v))
            .collect::<BTreeSet<Var>>();
        // Block this projected assignment.
        let blocking: Vec<Lit> = vars
            .iter()
            .map(|&v| Lit::new(v, !model.contains(&v)))
            .collect();
        out.push(model);
        if blocking.is_empty() {
            // Projecting onto the empty alphabet: one "model" at most.
            break;
        }
        if !solver.add_clause(&blocking) {
            break;
        }
    }
    Some(out)
}

/// Enumerate models of `f` over exactly `V(f)` (no projection), up to
/// `limit`.
pub fn all_models(f: &Formula, limit: usize) -> Option<Vec<Interpretation>> {
    let vars: Vec<Var> = f.vars().into_iter().collect();
    models_projected(f, &vars, limit)
}

/// Count models of `f` projected onto `vars`, up to `limit` (returns
/// `None` when the count reaches the limit).
pub fn count_models_projected(f: &Formula, vars: &[Var], limit: usize) -> Option<usize> {
    models_projected(f, vars, limit).map(|ms| ms.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn enumerates_all_models() {
        let f = v(0).or(v(1));
        let mut models = all_models(&f, 100).unwrap();
        models.sort();
        assert_eq!(models.len(), 3);
        assert!(models.iter().all(|m| f.eval(m)));
    }

    #[test]
    fn projection_collapses_aux_vars() {
        // f = (x0 ∨ x1) ∧ (x2 ∨ ¬x2): projecting on {x0} gives {∅?}.
        // Models over {x0,x1,x2} projected to x0: x0 can be 0 (x1 must
        // hold) or 1 → two projected models.
        let f = v(0).or(v(1));
        let ms = models_projected(&f, &[Var(0)], 100).unwrap();
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn unsat_formula_has_no_models() {
        let f = v(0).and(v(0).not());
        assert_eq!(all_models(&f, 10).unwrap().len(), 0);
    }

    #[test]
    fn empty_projection_of_sat_formula() {
        let f = v(0).or(v(1));
        let ms = models_projected(&f, &[], 10).unwrap();
        assert_eq!(ms.len(), 1);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn limit_returns_none() {
        let f = v(0).or(v(0).not()); // 2 models over {x0}
        assert!(models_projected(&f, &[Var(0)], 1).is_none());
        assert!(models_projected(&f, &[Var(0)], 2).is_some());
    }

    #[test]
    fn projection_onto_foreign_vars() {
        // Var(5) does not occur in f: it is unconstrained, so
        // projection onto it yields both values.
        let f = v(0);
        let ms = models_projected(&f, &[Var(5)], 10).unwrap();
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn tautology_projection_counts() {
        let f = v(0).or(v(0).not());
        assert_eq!(count_models_projected(&f, &[Var(0)], 10), Some(2));
    }
}
