//! # revkb-sat
//!
//! A from-scratch CDCL SAT solver and formula-level decision
//! procedures for the `revkb` belief-revision system.
//!
//! - [`Solver`]: incremental CDCL (two-watched literals, first-UIP
//!   learning, VSIDS, Luby restarts, phase saving, assumptions);
//! - [`satisfiable`] / [`entails`] / [`equivalent`] / [`find_model`]:
//!   formula-level queries via the Tseitin transform;
//! - [`models_projected`]: all-SAT with projection onto a
//!   sub-alphabet (the engine behind query-equivalence checking);
//! - [`QuerySession`]: incremental entailment — load a knowledge base
//!   once, answer many queries against it, with [`SolverStats`]
//!   observability;
//! - [`SessionPool`]: batch entailment sharded over one worker
//!   session per thread (`REVKB_THREADS`), with merged [`PoolStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod enumerate;
pub mod heap;
pub mod pool;
pub mod session;
pub mod solver;

pub use api::{
    entails, equivalent, find_model, pseudo_random_formula, satisfiable, solve_cnf, solver_for,
    supply_above, valid,
};
pub use enumerate::{all_models, count_models_projected, models_projected};
pub use pool::{default_threads, PoolConfig, PoolStats, SessionPool, THREADS_ENV};
pub use session::{QuerySession, SolverStats};
pub use solver::{constructions, luby, LBool, Solver, Stats};
