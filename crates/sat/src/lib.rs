//! # revkb-sat
//!
//! A from-scratch CDCL SAT solver and formula-level decision
//! procedures for the `revkb` belief-revision system.
//!
//! - [`Solver`]: incremental CDCL (two-watched literals, first-UIP
//!   learning, VSIDS, Luby restarts, phase saving, assumptions);
//! - [`satisfiable`] / [`entails`] / [`equivalent`] / [`find_model`]:
//!   formula-level queries via the Tseitin transform;
//! - [`models_projected`]: all-SAT with projection onto a
//!   sub-alphabet (the engine behind query-equivalence checking).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod enumerate;
pub mod heap;
pub mod solver;

pub use api::{
    entails, equivalent, find_model, satisfiable, solve_cnf, solver_for, supply_above, valid,
};
pub use enumerate::{all_models, count_models_projected, models_projected};
pub use solver::{luby, LBool, Solver, Stats};
