//! An indexed binary max-heap over variable activities, used by the
//! VSIDS decision heuristic. Supports `O(log n)` insert/pop and
//! `O(log n)` priority increase for elements already in the heap.

use revkb_logic::Var;

/// Indexed max-heap keyed by `f64` activity.
#[derive(Debug, Default, Clone)]
pub struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NOT_IN_HEAP`.
    position: Vec<u32>,
    /// Activity of each variable.
    activity: Vec<f64>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl ActivityHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make room for variables `0..n`, inserting new ones with zero
    /// activity.
    pub fn grow_to(&mut self, n: usize) {
        while self.position.len() < n {
            let v = Var(self.position.len() as u32);
            self.position.push(NOT_IN_HEAP);
            self.activity.push(0.0);
            self.insert(v);
        }
    }

    /// Current activity of `v`.
    pub fn activity(&self, v: Var) -> f64 {
        self.activity[v.index()]
    }

    /// Number of queued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no variable is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `v` is queued.
    pub fn contains(&self, v: Var) -> bool {
        self.position
            .get(v.index())
            .map(|&p| p != NOT_IN_HEAP)
            .unwrap_or(false)
    }

    /// Queue `v` (no-op if already queued).
    pub fn insert(&mut self, v: Var) {
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v.0);
        self.position[v.index()] = i as u32;
        self.sift_up(i);
    }

    /// Remove and return the variable with maximal activity.
    pub fn pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = Var(self.heap[0]);
        let last = self.heap.pop().unwrap();
        self.position[top.index()] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Add `amount` to the activity of `v`, restoring heap order.
    /// Returns the new activity (caller checks for rescale).
    pub fn bump(&mut self, v: Var, amount: f64) -> f64 {
        self.activity[v.index()] += amount;
        if self.contains(v) {
            let pos = self.position[v.index()] as usize;
            self.sift_up(pos);
        }
        self.activity[v.index()]
    }

    /// Divide every activity by `factor` (VSIDS rescale). Relative
    /// order is unchanged, so the heap stays valid.
    pub fn rescale(&mut self, factor: f64) {
        for a in &mut self.activity {
            *a /= factor;
        }
    }

    fn less(&self, a: u32, b: u32) -> bool {
        // Max-heap: "less" means lower activity (ties by higher index,
        // so low indices win — deterministic).
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa < ab || (aa == ab && a > b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(self.heap[parent], self.heap[i]) {
                self.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < self.heap.len() && self.less(self.heap[largest], self.heap[l]) {
                largest = l;
            }
            if r < self.heap.len() && self.less(self.heap[largest], self.heap[r]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = a as u32;
        self.position[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let mut h = ActivityHeap::new();
        h.grow_to(4);
        h.bump(Var(2), 3.0);
        h.bump(Var(0), 1.0);
        h.bump(Var(3), 2.0);
        assert_eq!(h.pop(), Some(Var(2)));
        assert_eq!(h.pop(), Some(Var(3)));
        assert_eq!(h.pop(), Some(Var(0)));
        assert_eq!(h.pop(), Some(Var(1))); // zero activity
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut h = ActivityHeap::new();
        h.grow_to(2);
        let a = h.pop().unwrap();
        assert!(!h.contains(a));
        h.insert(a);
        assert!(h.contains(a));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn bump_outside_heap_kept_on_reinsert() {
        let mut h = ActivityHeap::new();
        h.grow_to(2);
        let v = h.pop().unwrap();
        h.bump(v, 10.0);
        h.insert(v);
        assert_eq!(h.pop(), Some(v));
    }

    #[test]
    fn rescale_preserves_order() {
        let mut h = ActivityHeap::new();
        h.grow_to(3);
        h.bump(Var(1), 1e100);
        h.bump(Var(2), 2e100);
        h.rescale(1e100);
        assert_eq!(h.pop(), Some(Var(2)));
        assert_eq!(h.pop(), Some(Var(1)));
        assert!((h.activity(Var(2)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_tiebreak_low_index_first() {
        let mut h = ActivityHeap::new();
        h.grow_to(3);
        assert_eq!(h.pop(), Some(Var(0)));
        assert_eq!(h.pop(), Some(Var(1)));
        assert_eq!(h.pop(), Some(Var(2)));
    }
}
