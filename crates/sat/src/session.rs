//! Incremental query sessions: load a knowledge base once, answer
//! many entailment queries against it.
//!
//! The paper's two-step pipeline compiles `T * P` into `T'` once and
//! then answers every `T' ⊨ Q` with "standard machinery". The
//! one-shot [`crate::entails`] re-runs the Tseitin transform of
//! `T' ∧ ¬Q` and builds a fresh [`Solver`] for *every* query, which
//! throws away both the loaded CNF of `T'` and all learned clauses.
//! [`QuerySession`] is the incremental alternative:
//!
//! - the CNF of `T'` is Tseitin-loaded exactly once, at construction;
//! - each query encodes `¬Q` under a fresh *activation literal* `a`:
//!   the definition clauses of `Q` and the clause `¬a ∨ ¬root(Q)` are
//!   added, the solver runs under the assumption `a`, and afterwards
//!   the unit `¬a` permanently disables the query-specific clauses
//!   while every learned clause stays usable;
//! - a memo cache keyed by the query's structural hash makes repeated
//!   queries O(1);
//! - a [`SolverStats`] block (decisions, conflicts, propagations,
//!   restarts, learned clauses, cache traffic, wall time) makes the
//!   hot path observable.

use crate::api::supply_above;
use crate::solver::Solver;
use revkb_logic::{tseitin, tseitin_definitions, Cnf, CountingSupply, Formula, Lit, VarSupply};
use std::collections::HashMap;
use std::time::Instant;

// Registry mirrors of the session counters. `SolverStats` stays the
// JSON-visible source of truth (its shape is pinned by tests); these
// feed the cross-cutting telemetry snapshot that the bench binaries
// drain.
static OBS_QUERIES: revkb_obs::Counter = revkb_obs::Counter::new("sat.session.queries");
static OBS_CACHE_HITS: revkb_obs::Counter = revkb_obs::Counter::new("sat.session.cache_hits");
static OBS_CACHE_MISSES: revkb_obs::Counter = revkb_obs::Counter::new("sat.session.cache_misses");
static OBS_BASE_LOADS: revkb_obs::Counter = revkb_obs::Counter::new("sat.session.base_loads");
static OBS_DECISIONS: revkb_obs::Counter = revkb_obs::Counter::new("sat.solver.decisions");
static OBS_CONFLICTS: revkb_obs::Counter = revkb_obs::Counter::new("sat.solver.conflicts");
static OBS_PROPAGATIONS: revkb_obs::Counter = revkb_obs::Counter::new("sat.solver.propagations");
static OBS_RESTARTS: revkb_obs::Counter = revkb_obs::Counter::new("sat.solver.restarts");
static OBS_QUERY_MICROS: revkb_obs::Histogram =
    revkb_obs::Histogram::new("sat.session.query_micros");

/// Counter block for an incremental query session, merging solver
/// search counters with session-level cache and load accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Queries answered (including cache hits).
    pub queries: u64,
    /// Queries answered from the memo cache.
    pub cache_hits: u64,
    /// Queries that reached the solver.
    pub cache_misses: u64,
    /// Tseitin loads of the knowledge base (always 1 per session;
    /// the one-shot path pays one per query).
    pub base_loads: u64,
    /// Solvers constructed (always 1 per session).
    pub solver_constructions: u64,
    /// Decisions taken by the solver.
    pub decisions: u64,
    /// Conflicts encountered by the solver.
    pub conflicts: u64,
    /// Literals propagated by the solver.
    pub propagations: u64,
    /// Restarts performed by the solver.
    pub restarts: u64,
    /// Learned clauses currently retained.
    pub learnt_clauses: u64,
    /// Learned clauses deleted by DB reduction.
    pub learnts_removed: u64,
    /// Total wall time spent answering queries, in microseconds.
    pub total_query_micros: u64,
    /// Wall time of the most recent query, in microseconds.
    pub last_query_micros: u64,
}

impl SolverStats {
    /// Fold another counter block into this one, summing every
    /// additive counter.
    ///
    /// Time accounting: after merging, `total_query_micros` is the
    /// **sum of per-session busy time** — CPU-style accounting. When
    /// the merged sessions ran concurrently (as in
    /// [`crate::SessionPool`]), that sum double-counts overlapping
    /// wall-clock intervals, so it must *not* be reported as elapsed
    /// time; the pool measures real elapsed time separately and
    /// reports both (see [`crate::PoolStats`]). `last_query_micros`
    /// is kept as the maximum of the two blocks, since "most recent"
    /// is meaningless across concurrent sessions.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.base_loads += other.base_loads;
        self.solver_constructions += other.solver_constructions;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.learnts_removed += other.learnts_removed;
        self.total_query_micros += other.total_query_micros;
        self.last_query_micros = self.last_query_micros.max(other.last_query_micros);
    }

    /// Render as a JSON object (stable key order, no dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queries\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"base_loads\":{},\"solver_constructions\":{},\
             \"decisions\":{},\"conflicts\":{},\"propagations\":{},\
             \"restarts\":{},\"learnt_clauses\":{},\"learnts_removed\":{},\
             \"total_query_micros\":{},\"last_query_micros\":{}}}",
            self.queries,
            self.cache_hits,
            self.cache_misses,
            self.base_loads,
            self.solver_constructions,
            self.decisions,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learnt_clauses,
            self.learnts_removed,
            self.total_query_micros,
            self.last_query_micros,
        )
    }
}

/// An incremental entailment session against a fixed base formula.
///
/// ```
/// use revkb_logic::{Formula, Var};
/// use revkb_sat::QuerySession;
///
/// let v = |i| Formula::var(Var(i));
/// let mut session = QuerySession::new(&v(0).and(v(1)));
/// assert!(session.entails(&v(0)));
/// assert!(!session.entails(&v(0).not()));
/// assert!(session.entails(&v(0))); // cache hit
/// let stats = session.stats();
/// assert_eq!(stats.base_loads, 1);
/// assert_eq!(stats.cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct QuerySession {
    solver: Solver,
    supply: CountingSupply,
    /// First variable index owned by the session's Tseitin encodings;
    /// queries must stay strictly below it.
    first_internal_var: u32,
    cache: HashMap<Formula, bool>,
    stats: SolverStats,
}

impl QuerySession {
    /// Load `base` (the compiled representation `T'`) into a fresh
    /// solver. This is the only Tseitin transform of `base` the
    /// session ever performs.
    ///
    /// Queries may use any variable of `base`. If the query alphabet
    /// is wider than `V(base)` — e.g. the knowledge base's alphabet
    /// includes letters the formula simplified away — use
    /// [`QuerySession::with_query_alphabet`] so the session's internal
    /// letters are placed above them.
    pub fn new(base: &Formula) -> Self {
        Self::with_query_alphabet(base, 0)
    }

    /// Like [`QuerySession::new`], but additionally reserves
    /// `Var(0) .. Var(num_query_vars)` for queries: internal Tseitin
    /// letters start above both `V(base)` and `num_query_vars`.
    pub fn with_query_alphabet(base: &Formula, num_query_vars: u32) -> Self {
        let _span = revkb_obs::span("sat.base_load");
        OBS_BASE_LOADS.inc();
        let mut supply = supply_above([base]);
        let first_internal_var = supply.fresh_var().0.max(num_query_vars);
        let mut supply = CountingSupply::new(first_internal_var);
        let cnf = tseitin(base, &mut supply);
        let mut solver = Solver::new();
        // An unsatisfiable base sets the solver's root-level
        // contradiction flag; every later query then correctly
        // reports entailment (⊥ entails everything).
        solver.add_cnf(&cnf);
        QuerySession {
            solver,
            supply,
            first_internal_var,
            cache: HashMap::new(),
            stats: SolverStats {
                base_loads: 1,
                solver_constructions: 1,
                ..SolverStats::default()
            },
        }
    }

    /// Does the loaded base entail `q`?
    ///
    /// # Panics
    ///
    /// If `q` mentions a variable the session's internal encodings
    /// own (any index at or above the base formula's watermark):
    /// such a query would silently collide with Tseitin letters, so
    /// it is rejected in every build profile.
    pub fn entails(&mut self, q: &Formula) -> bool {
        let start = Instant::now();
        self.stats.queries += 1;
        OBS_QUERIES.inc();
        if let Some(&answer) = self.cache.get(q) {
            self.stats.cache_hits += 1;
            OBS_CACHE_HITS.inc();
            self.record_time(start);
            return answer;
        }
        self.stats.cache_misses += 1;
        OBS_CACHE_MISSES.inc();
        if let Some(v) = q
            .vars()
            .into_iter()
            .find(|v| v.0 >= self.first_internal_var)
        {
            panic!(
                "QuerySession::entails: query variable {v:?} collides with the \
                 session's internal Tseitin letters (base watermark {}); query \
                 formulas must stay within the base alphabet",
                self.first_internal_var
            );
        }

        // Encode ¬q under a fresh activation literal: definition
        // clauses are two-sided Tseitin definitions (harmless to keep
        // permanently), and the root-negation clause is gated so a
        // later unit ¬act retires it without touching learned clauses.
        let mut defs = Cnf::new();
        let root = tseitin_definitions(q, &mut defs, &mut self.supply);
        let act = Lit::pos(self.supply.fresh_var());
        for clause in &defs.clauses {
            let mut gated = clause.clone();
            gated.push(act.negated());
            self.solver.add_clause(&gated);
        }
        self.solver.add_clause(&[act.negated(), root.negated()]);

        let before = self.solver.stats;
        let counterexample = {
            let _span = revkb_obs::span("sat.query");
            self.solver.solve_under_assumptions(&[act])
        };
        let after = &self.solver.stats;
        OBS_DECISIONS.add(after.decisions - before.decisions);
        OBS_CONFLICTS.add(after.conflicts - before.conflicts);
        OBS_PROPAGATIONS.add(after.propagations - before.propagations);
        OBS_RESTARTS.add(after.restarts - before.restarts);
        // Permanently disable this query's activation group.
        self.solver.add_clause(&[act.negated()]);

        let answer = !counterexample;
        self.cache.insert(q.clone(), answer);
        self.record_time(start);
        answer
    }

    /// Is the loaded base consistent? (Answered incrementally; the
    /// result is not cached as a query.)
    pub fn base_satisfiable(&mut self) -> bool {
        self.solver.solve_under_assumptions(&[])
    }

    /// Current statistics, merged with the underlying solver's
    /// counters.
    pub fn stats(&self) -> SolverStats {
        let solver = &self.solver.stats;
        SolverStats {
            decisions: solver.decisions,
            conflicts: solver.conflicts,
            propagations: solver.propagations,
            restarts: solver.restarts,
            learnt_clauses: self.solver.num_learnts() as u64,
            learnts_removed: solver.learnts_removed,
            ..self.stats
        }
    }

    /// Number of distinct queries memoised so far.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn record_time(&mut self, start: Instant) {
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.stats.last_query_micros = micros;
        self.stats.total_query_micros += micros;
        OBS_QUERY_MICROS.record(micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn basic_entailment() {
        let mut s = QuerySession::new(&v(0).and(v(1)));
        assert!(s.entails(&v(0)));
        assert!(s.entails(&v(1)));
        assert!(s.entails(&v(0).and(v(1))));
        assert!(!s.entails(&v(0).not()));
        assert!(s.entails(&v(0).or(v(1))));
    }

    #[test]
    fn inconsistent_base_entails_everything() {
        let mut s = QuerySession::new(&v(0).and(v(0).not()));
        assert!(!s.base_satisfiable());
        assert!(s.entails(&v(0)));
        assert!(s.entails(&v(0).not()));
        assert!(s.entails(&Formula::False));
    }

    #[test]
    fn answers_survive_unsat_queries() {
        // Entailed queries make the solver run to UNSAT under the
        // activation assumption; the session must stay correct after.
        let mut s = QuerySession::new(&v(0).implies(v(1)).and(v(0)));
        assert!(s.entails(&v(1))); // UNSAT search
        assert!(!s.entails(&v(0).not())); // SAT search right after
        assert!(s.entails(&v(0).implies(v(1))));
        assert!(!s.entails(&v(1).implies(v(0)).and(v(1).not())));
    }

    #[test]
    fn cache_hits_are_counted_and_correct() {
        let mut s = QuerySession::new(&v(0).or(v(1)));
        let q = v(0).or(v(1));
        assert!(s.entails(&q));
        assert!(s.entails(&q));
        assert!(s.entails(&q));
        let stats = s.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(s.cache_len(), 1);
        // A different query after the hits is still answered correctly.
        assert!(!s.entails(&v(0)));
    }

    #[test]
    fn constants_as_queries() {
        let mut s = QuerySession::new(&v(0));
        assert!(s.entails(&Formula::True));
        assert!(!s.entails(&Formula::False));
    }

    #[test]
    #[should_panic(expected = "collides with the session's internal")]
    fn out_of_watermark_query_panics() {
        let mut s = QuerySession::new(&v(0).and(v(1)));
        s.entails(&v(1000));
    }

    #[test]
    fn merge_sums_counters_and_keeps_cpu_time_semantics() {
        let a = SolverStats {
            queries: 3,
            cache_hits: 1,
            cache_misses: 2,
            base_loads: 1,
            solver_constructions: 1,
            decisions: 10,
            conflicts: 4,
            propagations: 100,
            restarts: 1,
            learnt_clauses: 5,
            learnts_removed: 2,
            total_query_micros: 700,
            last_query_micros: 50,
        };
        let b = SolverStats {
            queries: 2,
            cache_misses: 2,
            base_loads: 1,
            solver_constructions: 1,
            total_query_micros: 900,
            last_query_micros: 80,
            ..SolverStats::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.queries, 5);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(merged.base_loads, 2);
        assert_eq!(merged.solver_constructions, 2);
        assert_eq!(merged.decisions, 10);
        assert_eq!(merged.conflicts, 4);
        assert_eq!(merged.propagations, 100);
        // Busy time sums (CPU-style): if the two sessions overlapped
        // on the wall clock, 1600 µs is *more* than the elapsed time —
        // that is exactly why it must be labelled CPU time, and why
        // the pool measures wall time independently.
        assert_eq!(merged.total_query_micros, 1600);
        // "Most recent" across concurrent sessions: keep the max.
        assert_eq!(merged.last_query_micros, 80);
    }

    #[test]
    fn one_base_load_many_queries() {
        let mut s = QuerySession::new(&v(0).and(v(1)).and(v(2)));
        for i in 0..3u32 {
            assert!(s.entails(&v(i)));
            assert!(!s.entails(&v(i).not()));
        }
        let stats = s.stats();
        assert_eq!(stats.base_loads, 1);
        assert_eq!(stats.solver_constructions, 1);
        assert_eq!(stats.queries, 6);
    }
}
