//! Formula-level decision procedures built on the CDCL solver.
//!
//! These are the workhorse queries of the revision system:
//! satisfiability, entailment `T ⊨ Q`, logical equivalence, and model
//! extraction — all via the full Tseitin transform, whose auxiliary
//! letters are existentially harmless (every model of the original
//! formula extends to exactly one CNF model).

use crate::solver::Solver;
use revkb_logic::{tseitin, Cnf, CountingSupply, Formula, Interpretation, Var, VarSupply};
use std::collections::BTreeSet;

/// A fresh-variable supply placed above every variable of `fs`.
pub fn supply_above<'a, I: IntoIterator<Item = &'a Formula>>(fs: I) -> CountingSupply {
    let mut max = 0u32;
    for f in fs {
        for v in f.vars() {
            max = max.max(v.0 + 1);
        }
    }
    CountingSupply::new(max)
}

/// Build a solver loaded with the Tseitin CNF of `f`.
pub fn solver_for(f: &Formula, supply: &mut impl VarSupply) -> Solver {
    let cnf = tseitin(f, supply);
    let mut s = Solver::new();
    s.add_cnf(&cnf);
    s
}

/// Is `f` satisfiable?
///
/// ```
/// use revkb_logic::{Formula, Var};
/// let x = Formula::var(Var(0));
/// assert!(revkb_sat::satisfiable(&x));
/// assert!(!revkb_sat::satisfiable(&x.clone().and(x.not())));
/// ```
pub fn satisfiable(f: &Formula) -> bool {
    match f {
        Formula::True => return true,
        Formula::False => return false,
        _ => {}
    }
    let mut supply = supply_above([f]);
    solver_for(f, &mut supply).solve()
}

/// Does `a ⊨ b` hold? (`a ∧ ¬b` unsatisfiable.)
pub fn entails(a: &Formula, b: &Formula) -> bool {
    !satisfiable(&a.clone().and(b.clone().not()))
}

/// Are `a` and `b` logically equivalent (criterion (2) of the paper)?
pub fn equivalent(a: &Formula, b: &Formula) -> bool {
    !satisfiable(&a.clone().xor(b.clone()))
}

/// Is `f` valid?
pub fn valid(f: &Formula) -> bool {
    !satisfiable(&f.clone().not())
}

/// Find one model of `f` restricted to `V(f)`, or `None` if
/// unsatisfiable.
pub fn find_model(f: &Formula) -> Option<Interpretation> {
    let vars = f.vars();
    let mut supply = supply_above([f]);
    let mut s = solver_for(f, &mut supply);
    if !s.solve() {
        return None;
    }
    Some(
        vars.into_iter()
            .filter(|&v| s.model_value(v))
            .collect::<BTreeSet<Var>>(),
    )
}

/// Deterministic pseudo-random formula generator (LCG-driven, no
/// external RNG): the workhorse of differential tests that cross-check
/// solver paths against truth tables and each other.
///
/// The sequence is a pure function of the evolving `seed`, so test
/// failures reproduce exactly from the initial seed value.
pub fn pseudo_random_formula(seed: &mut u64, depth: u32, num_vars: u32) -> Formula {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let r = (*seed >> 33) as u32;
    if depth == 0 || r.is_multiple_of(7) {
        return Formula::lit(Var(r % num_vars), r & 1 == 0);
    }
    let a = pseudo_random_formula(seed, depth - 1, num_vars);
    let b = pseudo_random_formula(seed, depth - 1, num_vars);
    match r % 6 {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.implies(b),
        3 => a.iff(b),
        4 => a.xor(b),
        _ => a.not(),
    }
}

/// Solve a raw CNF, returning one model if satisfiable.
pub fn solve_cnf(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut s = Solver::new();
    if !s.add_cnf(cnf) {
        return None;
    }
    if s.solve() {
        Some(s.model())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::{tt_entails, tt_equivalent, tt_satisfiable, Formula, Var};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn basic_queries() {
        assert!(satisfiable(&v(0)));
        assert!(!satisfiable(&v(0).and(v(0).not())));
        assert!(entails(&v(0).and(v(1)), &v(0)));
        assert!(!entails(&v(0).or(v(1)), &v(0)));
        assert!(equivalent(&v(0).implies(v(1)), &v(0).not().or(v(1))));
        assert!(valid(&v(0).or(v(0).not())));
        assert!(!valid(&v(0)));
    }

    #[test]
    fn constants() {
        assert!(satisfiable(&Formula::True));
        assert!(!satisfiable(&Formula::False));
        assert!(valid(&Formula::True));
    }

    #[test]
    fn find_model_satisfies() {
        let f = v(0).xor(v(1)).and(v(2).implies(v(0)));
        let m = find_model(&f).expect("satisfiable");
        assert!(f.eval(&m));
    }

    #[test]
    fn find_model_none_when_unsat() {
        assert!(find_model(&v(0).and(v(0).not())).is_none());
    }

    #[test]
    fn office_example() {
        // T = g ∨ b revised by P = ¬g: consistent, so T ∧ P ⊨ b.
        let (g, b) = (v(0), v(1));
        let t = g.clone().or(b.clone());
        let p = g.not();
        assert!(entails(&t.and(p), &b));
    }

    #[test]
    fn agrees_with_truth_tables() {
        let mut seed = 0xDEADBEEFu64;
        for _ in 0..200 {
            let f = pseudo_random_formula(&mut seed, 4, 6);
            assert_eq!(satisfiable(&f), tt_satisfiable(&f), "sat mismatch on {f:?}");
        }
        for _ in 0..100 {
            let a = pseudo_random_formula(&mut seed, 3, 5);
            let b = pseudo_random_formula(&mut seed, 3, 5);
            assert_eq!(entails(&a, &b), tt_entails(&a, &b), "entails mismatch");
            assert_eq!(equivalent(&a, &b), tt_equivalent(&a, &b), "equiv mismatch");
        }
    }
}
