//! Property tests for the QBF crate: expansion agrees with quantifier
//! semantics, substitution commutes with expansion, and duality laws
//! hold.

use proptest::prelude::*;
use revkb_logic::{tt_equivalent, Formula, Interpretation, Substitution, Var};
use revkb_qbf::Qbf;

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
        ]
        .boxed()
    })
    .boxed()
}

fn interp_of(free: &[Var], mask: u64) -> Interpretation {
    free.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &v)| v)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Expansion agrees with direct evaluation for ∀∃ prefixes.
    #[test]
    fn expand_agrees_with_eval(f in formula_strategy(5, 3), outer in 0u32..5, inner in 0u32..5) {
        prop_assume!(outer != inner);
        let q = Qbf::forall(
            vec![Var(outer)],
            Qbf::exists(vec![Var(inner)], Qbf::prop(f)),
        );
        let expanded = q.expand();
        let free: Vec<Var> = q.free_vars().into_iter().collect();
        prop_assume!(free.len() <= 8);
        for mask in 0..1u64 << free.len() {
            let m = interp_of(&free, mask);
            prop_assert_eq!(q.eval(&m), expanded.eval(&m));
        }
    }

    /// Quantifier duality: ¬∀Z.φ ≡ ∃Z.¬φ after expansion.
    #[test]
    fn duality(f in formula_strategy(4, 3), idx in 0u32..4) {
        let not_forall = Qbf::forall(vec![Var(idx)], Qbf::prop(f.clone())).not();
        let exists_not = Qbf::exists(vec![Var(idx)], Qbf::prop(f).not());
        prop_assert!(tt_equivalent(&not_forall.expand(), &exists_not.expand()));
    }

    /// Substituting free letters commutes with expansion.
    #[test]
    fn substitution_commutes_with_expand(
        f in formula_strategy(4, 2),
        target in 0u32..4,
        bound in 0u32..4,
    ) {
        prop_assume!(target != bound);
        let q = Qbf::forall(vec![Var(bound)], Qbf::prop(f));
        // Rename the target to a fresh letter, both before and after.
        let sub = Substitution::renaming(&[Var(target)], &[Var(20)]);
        let sub_then_expand = q.substitute(&sub).expand();
        let expand_then_sub = sub.apply(&q.expand());
        prop_assert!(tt_equivalent(&sub_then_expand, &expand_then_sub));
    }

    /// Quantifying a letter the matrix does not mention is a no-op.
    #[test]
    fn vacuous_quantification(f in formula_strategy(3, 3)) {
        let q = Qbf::forall(vec![Var(17)], Qbf::prop(f.clone()));
        prop_assert!(tt_equivalent(&q.expand(), &f));
        let e = Qbf::exists(vec![Var(17)], Qbf::prop(f.clone()));
        prop_assert!(tt_equivalent(&e.expand(), &f));
    }

    /// ∀ strengthens, ∃ weakens: ∀Z.φ ⊨ φ ⊨ ∃Z.φ.
    #[test]
    fn monotonicity(f in formula_strategy(4, 3), idx in 0u32..4) {
        let a = Qbf::forall(vec![Var(idx)], Qbf::prop(f.clone())).expand();
        let e = Qbf::exists(vec![Var(idx)], Qbf::prop(f.clone())).expand();
        prop_assert!(revkb_logic::tt_entails(&a, &f));
        prop_assert!(revkb_logic::tt_entails(&f, &e));
    }
}
