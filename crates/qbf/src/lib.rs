//! # revkb-qbf
//!
//! Quantified boolean formulas and their expansion to propositional
//! form.
//!
//! Section 6 of the paper expresses the iterated bounded revisions of
//! Winslett, Borgida, Satoh and Forbus as QBFs — formulas (12)–(16) —
//! whose universal quantifiers range over the (constant-size) alphabet
//! of the revising formula. Theorem 6.3 turns them into propositional
//! formulas by replacing each `∀Z.φ` with the conjunction of `φ` under
//! every assignment to `Z`, an at-most-quadratic size increase when
//! `|Z|` is bounded. [`Qbf::expand`] implements exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use revkb_logic::{Formula, Interpretation, Substitution, Var};
use std::collections::BTreeSet;

/// A quantified boolean formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qbf {
    /// A propositional (quantifier-free) formula.
    Prop(Formula),
    /// Universal quantification `∀Z.φ` over a block of letters.
    Forall(Vec<Var>, Box<Qbf>),
    /// Existential quantification `∃Z.φ` over a block of letters.
    Exists(Vec<Var>, Box<Qbf>),
    /// Conjunction.
    And(Vec<Qbf>),
    /// Disjunction.
    Or(Vec<Qbf>),
    /// Negation.
    Not(Box<Qbf>),
    /// Implication.
    Implies(Box<Qbf>, Box<Qbf>),
}

impl Qbf {
    /// Lift a propositional formula.
    pub fn prop(f: Formula) -> Qbf {
        Qbf::Prop(f)
    }

    /// `∀vars. body`.
    pub fn forall(vars: Vec<Var>, body: Qbf) -> Qbf {
        if vars.is_empty() {
            body
        } else {
            Qbf::Forall(vars, Box::new(body))
        }
    }

    /// `∃vars. body`.
    pub fn exists(vars: Vec<Var>, body: Qbf) -> Qbf {
        if vars.is_empty() {
            body
        } else {
            Qbf::Exists(vars, Box::new(body))
        }
    }

    /// Conjunction of QBFs.
    pub fn and_all<I: IntoIterator<Item = Qbf>>(items: I) -> Qbf {
        Qbf::And(items.into_iter().collect())
    }

    /// `self ∧ other`.
    pub fn and(self, other: Qbf) -> Qbf {
        Qbf::And(vec![self, other])
    }

    /// `self ∨ other`.
    pub fn or(self, other: Qbf) -> Qbf {
        Qbf::Or(vec![self, other])
    }

    /// `¬self`.
    ///
    /// Inherent rather than `std::ops::Not` for the same fluent-
    /// chaining reason as `Formula::not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Qbf {
        Qbf::Not(Box::new(self))
    }

    /// `self → other`.
    pub fn implies(self, other: Qbf) -> Qbf {
        Qbf::Implies(Box::new(self), Box::new(other))
    }

    /// Free letters (occurring outside the scope of their quantifier).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Qbf::Prop(f) => f.vars(),
            Qbf::Forall(vs, body) | Qbf::Exists(vs, body) => {
                let mut free = body.free_vars();
                for v in vs {
                    free.remove(v);
                }
                free
            }
            Qbf::And(items) | Qbf::Or(items) => {
                let mut free = BTreeSet::new();
                for q in items {
                    free.extend(q.free_vars());
                }
                free
            }
            Qbf::Not(body) => body.free_vars(),
            Qbf::Implies(a, b) => {
                let mut free = a.free_vars();
                free.extend(b.free_vars());
                free
            }
        }
    }

    /// Size before expansion: variable occurrences of the matrix plus
    /// the quantified blocks.
    pub fn size(&self) -> usize {
        match self {
            Qbf::Prop(f) => f.size(),
            Qbf::Forall(vs, body) | Qbf::Exists(vs, body) => vs.len() + body.size(),
            Qbf::And(items) | Qbf::Or(items) => items.iter().map(Qbf::size).sum(),
            Qbf::Not(body) => body.size(),
            Qbf::Implies(a, b) => a.size() + b.size(),
        }
    }

    /// Expand every quantifier into a conjunction/disjunction over all
    /// assignments of its block (Theorem 6.3). Exponential in the
    /// largest block — polynomial when blocks are bounded, which is
    /// the paper's bounded-revision setting.
    ///
    /// ```
    /// use revkb_qbf::Qbf;
    /// use revkb_logic::{Formula, Var};
    /// // ∀x₀.(x₀ ∨ x₁) ≡ x₁
    /// let q = Qbf::forall(vec![Var(0)],
    ///     Qbf::prop(Formula::var(Var(0)).or(Formula::var(Var(1)))));
    /// assert!(revkb_logic::tt_equivalent(&q.expand(), &Formula::var(Var(1))));
    /// ```
    pub fn expand(&self) -> Formula {
        match self {
            Qbf::Prop(f) => f.clone(),
            Qbf::Forall(vs, body) => {
                let inner = body.expand();
                Formula::and_all(assignments(vs).map(|sub| sub.apply(&inner).simplified()))
            }
            Qbf::Exists(vs, body) => {
                let inner = body.expand();
                Formula::or_all(assignments(vs).map(|sub| sub.apply(&inner).simplified()))
            }
            Qbf::And(items) => Formula::and_all(items.iter().map(Qbf::expand)),
            Qbf::Or(items) => Formula::or_all(items.iter().map(Qbf::expand)),
            Qbf::Not(body) => body.expand().not(),
            Qbf::Implies(a, b) => a.expand().implies(b.expand()),
        }
    }

    /// Apply a substitution to the free letters.
    ///
    /// # Panics
    /// If the substitution binds a quantified letter or its replacement
    /// would be captured by a quantifier (both are construction errors
    /// in the revision formulas, where all copies are fresh).
    pub fn substitute(&self, sub: &Substitution) -> Qbf {
        match self {
            Qbf::Prop(f) => Qbf::Prop(sub.apply(f)),
            Qbf::Forall(vs, body) | Qbf::Exists(vs, body) => {
                for &v in vs {
                    assert!(
                        sub.get(v).is_none(),
                        "substitution binds quantified letter {v}"
                    );
                }
                let new_body = Box::new(body.substitute(sub));
                // Capture check: replacements must not mention bound letters.
                let free_after = new_body.free_vars();
                debug_assert!(
                    vs.iter()
                        .all(|v| !free_after.contains(v) || body.free_vars().contains(v)),
                    "substitution captured a quantified letter"
                );
                match self {
                    Qbf::Forall(_, _) => Qbf::Forall(vs.clone(), new_body),
                    _ => Qbf::Exists(vs.clone(), new_body),
                }
            }
            Qbf::And(items) => Qbf::And(items.iter().map(|q| q.substitute(sub)).collect()),
            Qbf::Or(items) => Qbf::Or(items.iter().map(|q| q.substitute(sub)).collect()),
            Qbf::Not(body) => Qbf::Not(Box::new(body.substitute(sub))),
            Qbf::Implies(a, b) => {
                Qbf::Implies(Box::new(a.substitute(sub)), Box::new(b.substitute(sub)))
            }
        }
    }

    /// Evaluate under an interpretation of the free letters (quantified
    /// letters are handled by quantifier semantics). Exponential in
    /// quantified blocks; for testing.
    pub fn eval(&self, m: &Interpretation) -> bool {
        match self {
            Qbf::Prop(f) => f.eval(m),
            Qbf::Forall(vs, body) => assignments_sets(vs, m).all(|m2| body.eval(&m2)),
            Qbf::Exists(vs, body) => assignments_sets(vs, m).any(|m2| body.eval(&m2)),
            Qbf::And(items) => items.iter().all(|q| q.eval(m)),
            Qbf::Or(items) => items.iter().any(|q| q.eval(m)),
            Qbf::Not(body) => !body.eval(m),
            Qbf::Implies(a, b) => !a.eval(m) || b.eval(m),
        }
    }
}

/// All substitutions mapping `vs` to constants, as an iterator.
fn assignments(vs: &[Var]) -> impl Iterator<Item = Substitution> + '_ {
    assert!(vs.len() < 30, "quantifier block too large to expand");
    (0..1u64 << vs.len()).map(move |mask| {
        let mut sub = Substitution::new();
        for (i, &v) in vs.iter().enumerate() {
            let value = mask >> i & 1 == 1;
            sub = sub.bind(v, if value { Formula::True } else { Formula::False });
        }
        sub
    })
}

/// All overlays of `vs` onto a base interpretation.
fn assignments_sets<'a>(
    vs: &'a [Var],
    base: &'a Interpretation,
) -> impl Iterator<Item = Interpretation> + 'a {
    assert!(vs.len() < 30, "quantifier block too large to expand");
    (0..1u64 << vs.len()).map(move |mask| {
        let mut m = base.clone();
        for (i, &v) in vs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                m.insert(v);
            } else {
                m.remove(&v);
            }
        }
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::{tt_equivalent, tt_valid};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn expand_forall() {
        // ∀x0. (x0 ∨ x1) ≡ x1
        let q = Qbf::forall(vec![Var(0)], Qbf::prop(v(0).or(v(1))));
        assert!(tt_equivalent(&q.expand(), &v(1)));
    }

    #[test]
    fn expand_exists() {
        // ∃x0. (x0 ∧ x1) ≡ x1
        let q = Qbf::exists(vec![Var(0)], Qbf::prop(v(0).and(v(1))));
        assert!(tt_equivalent(&q.expand(), &v(1)));
    }

    #[test]
    fn expand_nested_blocks() {
        // ∀x0 ∃x1. (x0 ≢ x1) is valid.
        let q = Qbf::forall(
            vec![Var(0)],
            Qbf::exists(vec![Var(1)], Qbf::prop(v(0).xor(v(1)))),
        );
        assert!(tt_valid(&q.expand()));
        // ∃x1 ∀x0. (x0 ≢ x1) is unsatisfiable.
        let q2 = Qbf::exists(
            vec![Var(1)],
            Qbf::forall(vec![Var(0)], Qbf::prop(v(0).xor(v(1)))),
        );
        assert!(tt_equivalent(&q2.expand(), &Formula::False));
    }

    #[test]
    fn expand_multivar_block() {
        // ∀{x0,x1}. (x0 ∨ x1 ∨ x2) ≡ x2
        let q = Qbf::forall(vec![Var(0), Var(1)], Qbf::prop(v(0).or(v(1)).or(v(2))));
        assert!(tt_equivalent(&q.expand(), &v(2)));
    }

    #[test]
    fn eval_matches_expand() {
        let q = Qbf::prop(v(2))
            .and(Qbf::forall(
                vec![Var(0)],
                Qbf::prop(v(0).implies(v(1))).or(Qbf::prop(v(0).not())),
            ))
            .implies(Qbf::exists(vec![Var(1)], Qbf::prop(v(1).xor(v(2)))));
        let expanded = q.expand();
        let free: Vec<Var> = q.free_vars().into_iter().collect();
        for mask in 0..1u64 << free.len() {
            let m: Interpretation = free
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            assert_eq!(q.eval(&m), expanded.eval(&m), "mismatch at {m:?}");
        }
    }

    #[test]
    fn free_vars_exclude_bound() {
        let q = Qbf::forall(vec![Var(0)], Qbf::prop(v(0).and(v(1))));
        let free = q.free_vars();
        assert!(!free.contains(&Var(0)));
        assert!(free.contains(&Var(1)));
    }

    #[test]
    fn empty_block_is_identity() {
        let q = Qbf::forall(vec![], Qbf::prop(v(0)));
        assert_eq!(q, Qbf::prop(v(0)));
    }

    #[test]
    fn size_accounts_blocks() {
        let q = Qbf::forall(vec![Var(0), Var(1)], Qbf::prop(v(0).or(v(1))));
        assert_eq!(q.size(), 4);
    }

    #[test]
    fn expansion_size_quadratic_in_bounded_blocks() {
        // With |Z| = 2 fixed, expansion multiplies matrix size by 4.
        let matrix = v(0).or(v(1)).or(v(2)).or(v(3));
        let q = Qbf::forall(vec![Var(0), Var(1)], Qbf::prop(matrix.clone()));
        let e = q.expand();
        assert!(e.size() <= 4 * matrix.size());
    }
}
