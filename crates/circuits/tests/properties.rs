//! Property tests for the circuit crate: every distance construct
//! agrees with the arithmetic it encodes, across random widths,
//! thresholds and inputs.

use proptest::prelude::*;
use revkb_circuits::{
    distance_at_most, distance_less_direct, evaluate_circuit_mask, exa, exa_direct, k_subsets,
    CircuitBuilder,
};
use revkb_logic::{CountingSupply, Formula, Var};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// EXA (gated) and exa_direct (gate-free) both decide
    /// |X △ Y| = k, for all inputs.
    #[test]
    fn exa_variants_agree_with_hamming(n in 1usize..5, k in 0usize..6, mask in 0u64..1024) {
        let xs: Vec<Var> = (0..n as u32).map(Var).collect();
        let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
        let inputs: Vec<Var> = xs.iter().chain(&ys).copied().collect();
        let m = mask & ((1u64 << (2 * n)) - 1);
        let x = m & ((1 << n) - 1);
        let y = m >> n;
        let expected = (x ^ y).count_ones() as usize == k;

        let mut supply = CountingSupply::new(100);
        let gated = exa(k, &xs, &ys, &mut supply);
        prop_assert_eq!(evaluate_circuit_mask(&gated, &inputs, m), expected);

        let direct = exa_direct(k, &xs, &ys);
        let alpha = revkb_logic::Alphabet::new(inputs.clone());
        prop_assert_eq!(alpha.eval_mask(&direct, m), expected);
    }

    /// distance_at_most decides |X △ Y| ≤ k.
    #[test]
    fn at_most_agrees(n in 1usize..5, k in 0usize..6, mask in 0u64..1024) {
        let xs: Vec<Var> = (0..n as u32).map(Var).collect();
        let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
        let inputs: Vec<Var> = xs.iter().chain(&ys).copied().collect();
        let m = mask & ((1u64 << (2 * n)) - 1);
        let x = m & ((1 << n) - 1);
        let y = m >> n;
        let mut supply = CountingSupply::new(100);
        let f = distance_at_most(k, &xs, &ys, &mut supply);
        prop_assert_eq!(
            evaluate_circuit_mask(&f, &inputs, m),
            (x ^ y).count_ones() as usize <= k
        );
    }

    /// The gate-free comparator decides |A △ Y| < |B △ Y|.
    #[test]
    fn less_direct_agrees(mask in 0u64..4096) {
        let a = [Var(0), Var(1)];
        let b = [Var(2), Var(3)];
        let y = [Var(4), Var(5)];
        let f = distance_less_direct(&a, &b, &y);
        let alpha = revkb_logic::Alphabet::new((0..6).map(Var).collect());
        let m = mask & 63;
        let (av, bv, yv) = (m & 3, m >> 2 & 3, m >> 4 & 3);
        prop_assert_eq!(
            alpha.eval_mask(&f, m),
            (av ^ yv).count_ones() < (bv ^ yv).count_ones()
        );
    }

    /// popcount + equals_const over random widths.
    #[test]
    fn popcount_counts(n in 1usize..7, mask in 0u64..128) {
        let inputs: Vec<Var> = (0..n as u32).map(Var).collect();
        let m = mask & ((1u64 << n) - 1);
        for k in 0..=n as u64 {
            let mut supply = CountingSupply::new(100);
            let mut cb = CircuitBuilder::new(&mut supply);
            let wires: Vec<Formula> = inputs.iter().map(|&v| Formula::var(v)).collect();
            let sum = cb.popcount(&wires);
            let out = cb.equals_const(&sum, k);
            let f = cb.finish(out);
            prop_assert_eq!(
                evaluate_circuit_mask(&f, &inputs, m),
                m.count_ones() as u64 == k
            );
        }
    }

    /// k_subsets enumerates exactly C(n, k) sorted subsets.
    #[test]
    fn k_subsets_complete(n in 0usize..7, k in 0usize..7) {
        let subsets = k_subsets(n, k);
        fn choose(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            (0..k).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
        }
        prop_assert_eq!(subsets.len(), choose(n, k));
        let distinct: std::collections::HashSet<_> = subsets.iter().collect();
        prop_assert_eq!(distinct.len(), subsets.len());
        for s in &subsets {
            prop_assert_eq!(s.len(), k);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&i| i < n));
        }
    }
}
