//! Direct evaluation of definitional circuits.
//!
//! A circuit produced by [`crate::CircuitBuilder`] has the shape
//! `def₁ ∧ … ∧ defₖ ∧ output`, where each `defᵢ` is `wᵢ ≡ gateᵢ` and
//! `gateᵢ` mentions only inputs and earlier gate letters. For a fixed
//! input assignment the gate letters are functionally determined, so
//! the circuit can be evaluated in one linear pass instead of searching
//! over the `W` letters. This is both a fast test oracle and a direct
//! demonstration of the unique-extension property Theorem 3.4 relies
//! on.

use revkb_logic::{Formula, Interpretation, Var};
use std::collections::HashMap;

/// Evaluate a definitional circuit under an assignment to its inputs.
///
/// Returns the truth value of the conjunction with every gate letter
/// set to its (unique) forced value. Gate definitions are recognised
/// as `Iff(Var(w), rhs)` conjuncts whose `w` is not an input and has
/// not been defined yet; all other conjuncts are treated as output
/// conditions.
pub fn evaluate_circuit(f: &Formula, inputs: &Interpretation) -> bool {
    let mut values: HashMap<Var, bool> = inputs.iter().map(|&v| (v, true)).collect();
    let input_set: std::collections::BTreeSet<Var> = inputs.iter().copied().collect();
    let parts: Vec<&Formula> = match f {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    };
    let mut outputs = Vec::new();
    for part in parts {
        if let Formula::Iff(lhs, rhs) = part {
            if let Formula::Var(w) = **lhs {
                if !input_set.contains(&w) && !values.contains_key(&w) {
                    let val = rhs.eval_fn(&|v| values.get(&v).copied().unwrap_or(false));
                    values.insert(w, val);
                    continue;
                }
            }
        }
        outputs.push(part);
    }
    outputs
        .iter()
        .all(|g| g.eval_fn(&|v| values.get(&v).copied().unwrap_or(false)))
}

/// Evaluate over an input mask relative to an ordered input list.
pub fn evaluate_circuit_mask(f: &Formula, inputs: &[Var], mask: u64) -> bool {
    let m: Interpretation = inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &v)| v)
        .collect();
    evaluate_circuit(f, &m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use revkb_logic::CountingSupply;

    #[test]
    fn evaluates_gates_in_order() {
        let inputs = [Var(0), Var(1), Var(2)];
        let mut supply = CountingSupply::new(100);
        let mut cb = CircuitBuilder::new(&mut supply);
        let wires: Vec<Formula> = inputs.iter().map(|&v| Formula::var(v)).collect();
        let sum = cb.popcount(&wires);
        let out = cb.equals_const(&sum, 2);
        let f = cb.finish(out);
        for mask in 0..8u64 {
            let expected = mask.count_ones() == 2;
            assert_eq!(
                evaluate_circuit_mask(&f, &inputs, mask),
                expected,
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn plain_formula_without_defs() {
        let f = Formula::var(Var(0)).and(Formula::var(Var(1)).not());
        assert!(evaluate_circuit_mask(&f, &[Var(0), Var(1)], 0b01));
        assert!(!evaluate_circuit_mask(&f, &[Var(0), Var(1)], 0b11));
    }
}
