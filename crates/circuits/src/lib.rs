//! # revkb-circuits
//!
//! Boolean circuits as polynomial-size propositional formulas with
//! definitional gate letters — the paper's `EXA(k, X, Y, W)`
//! Hamming-distance formula (Theorem 3.4) and the distance comparator
//! of formula (14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod distance;
pub mod evaluate;

pub use builder::{CircuitBuilder, Wire};
pub use distance::{
    distance_at_most, distance_less_direct, distance_less_than, exa, exa_direct, exa_with_aux,
    k_subsets,
};
pub use evaluate::{evaluate_circuit, evaluate_circuit_mask};
