//! The paper's distance formulas: `EXA(k, X, Y, W)` (Theorem 3.4) and
//! the `DIST(·,·,W₁) < DIST(·,·,W₂)` comparator of formula (14).
//!
//! `EXA(k, X, Y, W)` is a polynomial-size formula over `X ∪ Y ∪ W`
//! that is true iff the Hamming distance between the truth assignments
//! to `X` and `Y` is exactly `k`. The circuit has `O(n log n)` gates
//! (XOR layer + popcount adder tree + comparison against the constant),
//! matching the `O(n · log n)` bound the paper cites from
//! Boppana–Sipser.

use crate::builder::CircuitBuilder;
use revkb_logic::{Formula, Var, VarSupply};

/// `EXA(k, X, Y, W)`: true iff `|X △ Y| = k`. Fresh `W` letters come
/// from `supply`.
///
/// ```
/// use revkb_circuits::{exa, evaluate_circuit_mask};
/// use revkb_logic::{CountingSupply, Var};
/// let xs = [Var(0), Var(1)];
/// let ys = [Var(2), Var(3)];
/// let mut supply = CountingSupply::new(10);
/// let f = exa(1, &xs, &ys, &mut supply);
/// let inputs = [Var(0), Var(1), Var(2), Var(3)];
/// // x = 01, y = 11 → distance 1.
/// assert!(evaluate_circuit_mask(&f, &inputs, 0b1101));
/// // x = 01, y = 01 → distance 0.
/// assert!(!evaluate_circuit_mask(&f, &inputs, 0b0101));
/// ```
///
/// # Panics
/// If `xs` and `ys` differ in length.
pub fn exa(k: usize, xs: &[Var], ys: &[Var], supply: &mut impl VarSupply) -> Formula {
    let _span = revkb_obs::span("circuits.exa");
    let mut cb = CircuitBuilder::new(supply);
    let bits = cb.diff_bits(xs, ys);
    let sum = cb.popcount(&bits);
    let out = cb.equals_const(&sum, k as u64);
    cb.finish(out)
}

/// Like [`exa`] but also returns the introduced gate letters `W`.
pub fn exa_with_aux(
    k: usize,
    xs: &[Var],
    ys: &[Var],
    supply: &mut impl VarSupply,
) -> (Formula, Vec<Var>) {
    let mut cb = CircuitBuilder::new(supply);
    let bits = cb.diff_bits(xs, ys);
    let sum = cb.popcount(&bits);
    let out = cb.equals_const(&sum, k as u64);
    let aux = cb.aux_vars().to_vec();
    (cb.finish(out), aux)
}

/// True iff `|X △ Y| ≤ k`.
pub fn distance_at_most(k: usize, xs: &[Var], ys: &[Var], supply: &mut impl VarSupply) -> Formula {
    let mut cb = CircuitBuilder::new(supply);
    let bits = cb.diff_bits(xs, ys);
    let sum = cb.popcount(&bits);
    let out = cb.at_most_const(&sum, k as u64);
    cb.finish(out)
}

/// Formula (14)'s comparator: true iff
/// `DIST(A₁,B₁) < DIST(A₂,B₂)` (Hamming distances). The four vectors
/// must pair up in length (`|A₁| = |B₁|`, `|A₂| = |B₂|`).
pub fn distance_less_than(
    a1: &[Var],
    b1: &[Var],
    a2: &[Var],
    b2: &[Var],
    supply: &mut impl VarSupply,
) -> Formula {
    let mut cb = CircuitBuilder::new(supply);
    let bits1 = cb.diff_bits(a1, b1);
    let sum1 = cb.popcount(&bits1);
    let bits2 = cb.diff_bits(a2, b2);
    let sum2 = cb.popcount(&bits2);
    let out = cb.less_than(&sum1, &sum2);
    cb.finish(out)
}

/// Gate-free exact-distance formula: true iff `|X △ Y| = k`, written
/// as the disjunction over all `k`-subsets `S` of positions of
/// "differ exactly on S". Size `O(C(n,k)·n)` — exponential in `n` in
/// general, constant for the paper's bounded case (`|V(P)| ≤ k`
/// fixed), where it avoids introducing any `W` letters.
pub fn exa_direct(k: usize, xs: &[Var], ys: &[Var]) -> Formula {
    assert_eq!(xs.len(), ys.len(), "vector length mismatch");
    let n = xs.len();
    if k > n {
        return Formula::False;
    }
    let mut disjuncts = Vec::new();
    for subset in k_subsets(n, k) {
        let in_s = |i: usize| subset.binary_search(&i).is_ok();
        disjuncts.push(Formula::and_all((0..n).map(|i| {
            let (x, y) = (Formula::var(xs[i]), Formula::var(ys[i]));
            if in_s(i) {
                x.xor(y)
            } else {
                x.iff(y)
            }
        })));
    }
    Formula::or_all(disjuncts)
}

/// All `k`-element subsets of `0..n`, each sorted ascending.
pub fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == 0 {
            out.push(cur.clone());
            return;
        }
        for i in start..=n - k {
            cur.push(i);
            rec(i + 1, n, k - 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(0, n, k, &mut Vec::new(), &mut out);
    }
    out
}

/// Gate-free "strictly closer" formula: true iff
/// `|A △ Y| < |B △ Y|`. Same exponential-in-`n` caveat as
/// [`exa_direct`]; intended for the bounded case.
pub fn distance_less_direct(a: &[Var], b: &[Var], y: &[Var]) -> Formula {
    let n = y.len();
    Formula::or_all(
        (0..n).flat_map(|d1| {
            (d1 + 1..=n).map(move |d2| exa_direct(d1, a, y).and(exa_direct(d2, b, y)))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_circuit_mask;
    use revkb_logic::CountingSupply;

    /// Check a distance circuit against a predicate on (x, y) masks.
    fn check_pairs(
        f: &Formula,
        xs: &[Var],
        ys: &[Var],
        pred: impl Fn(u64, u64) -> bool,
        label: &str,
    ) {
        let n = xs.len();
        let inputs: Vec<Var> = xs.iter().chain(ys).copied().collect();
        for x in 0..1u64 << n {
            for y in 0..1u64 << n {
                let mask = x | y << n;
                assert_eq!(
                    evaluate_circuit_mask(f, &inputs, mask),
                    pred(x, y),
                    "{label} at x={x:b} y={y:b}"
                );
            }
        }
    }

    #[test]
    fn exa_exact_distance() {
        for n in 1..=5usize {
            let xs: Vec<Var> = (0..n as u32).map(Var).collect();
            let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
            for k in 0..=n {
                let mut supply = CountingSupply::new(100);
                let f = exa(k, &xs, &ys, &mut supply);
                check_pairs(
                    &f,
                    &xs,
                    &ys,
                    |x, y| (x ^ y).count_ones() as usize == k,
                    &format!("EXA({k}) n={n}"),
                );
            }
        }
    }

    #[test]
    fn exa_impossible_distance_unsat() {
        let xs = [Var(0)];
        let ys = [Var(1)];
        let mut supply = CountingSupply::new(100);
        let f = exa(5, &xs, &ys, &mut supply);
        check_pairs(&f, &xs, &ys, |_, _| false, "EXA(5) on 1-letter vectors");
    }

    #[test]
    fn exa_zero_length_vectors() {
        let mut supply = CountingSupply::new(100);
        let f = exa(0, &[], &[], &mut supply);
        assert!(!f.is_false());
        let g = exa(1, &[], &[], &mut supply);
        assert!(revkb_logic::tt_equivalent(&g, &Formula::False));
    }

    #[test]
    fn exa_size_is_polynomial() {
        // Size should grow roughly n·log n — verify it is well below
        // quadratic blowup for a sweep.
        let mut sizes = Vec::new();
        for n in [4usize, 8, 16, 32] {
            let xs: Vec<Var> = (0..n as u32).map(Var).collect();
            let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
            let mut supply = CountingSupply::new(10_000);
            let f = exa(n / 2, &xs, &ys, &mut supply);
            sizes.push(f.size());
        }
        // Doubling n should grow size by clearly less than 4x.
        for w in sizes.windows(2) {
            assert!(
                (w[1] as f64) < 3.5 * w[0] as f64,
                "superquadratic EXA growth: {sizes:?}"
            );
        }
    }

    #[test]
    fn distance_at_most_correct() {
        let n = 3usize;
        let xs: Vec<Var> = (0..n as u32).map(Var).collect();
        let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
        for k in 0..=n {
            let mut supply = CountingSupply::new(100);
            let f = distance_at_most(k, &xs, &ys, &mut supply);
            check_pairs(
                &f,
                &xs,
                &ys,
                |x, y| (x ^ y).count_ones() as usize <= k,
                &format!("dist ≤ {k}"),
            );
        }
    }

    #[test]
    fn distance_less_than_correct() {
        // 2-letter vectors; compare |A1△B1| < |A2△B2| over all 256
        // input combinations.
        let a1 = [Var(0), Var(1)];
        let b1 = [Var(2), Var(3)];
        let a2 = [Var(4), Var(5)];
        let b2 = [Var(6), Var(7)];
        let mut supply = CountingSupply::new(100);
        let f = distance_less_than(&a1, &b1, &a2, &b2, &mut supply);
        let inputs: Vec<Var> = (0..8).map(Var).collect();
        for m in 0..256u64 {
            let d1 = ((m & 3) ^ (m >> 2 & 3)).count_ones();
            let d2 = ((m >> 4 & 3) ^ (m >> 6 & 3)).count_ones();
            assert_eq!(
                evaluate_circuit_mask(&f, &inputs, m),
                d1 < d2,
                "DIST comparator at {m:b}"
            );
        }
    }

    #[test]
    fn exa_direct_matches_semantics() {
        use revkb_logic::Alphabet;
        for n in 0..=4usize {
            let xs: Vec<Var> = (0..n as u32).map(Var).collect();
            let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
            let alpha = Alphabet::new(xs.iter().chain(&ys).copied().collect());
            for k in 0..=n + 1 {
                let f = exa_direct(k, &xs, &ys);
                for m in 0..1u64 << (2 * n) {
                    let x = m & ((1 << n) - 1);
                    let y = m >> n;
                    assert_eq!(
                        alpha.eval_mask(&f, m),
                        (x ^ y).count_ones() as usize == k,
                        "exa_direct({k}) n={n} x={x:b} y={y:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_less_direct_matches_semantics() {
        use revkb_logic::Alphabet;
        let a = [Var(0), Var(1)];
        let b = [Var(2), Var(3)];
        let y = [Var(4), Var(5)];
        let f = distance_less_direct(&a, &b, &y);
        let alpha = Alphabet::new((0..6).map(Var).collect());
        for m in 0..64u64 {
            let (av, bv, yv) = (m & 3, m >> 2 & 3, m >> 4 & 3);
            assert_eq!(
                alpha.eval_mask(&f, m),
                (av ^ yv).count_ones() < (bv ^ yv).count_ones(),
                "at {m:b}"
            );
        }
    }

    #[test]
    fn exa_with_aux_reports_gates() {
        let xs = [Var(0), Var(1)];
        let ys = [Var(2), Var(3)];
        let mut supply = CountingSupply::new(100);
        let (f, aux) = exa_with_aux(1, &xs, &ys, &mut supply);
        assert!(!aux.is_empty());
        for w in &aux {
            assert!(f.vars().contains(w));
        }
    }
}
