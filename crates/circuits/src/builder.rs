//! Definitional circuit construction.
//!
//! Theorem 3.4 of the paper represents the Boolean circuit deciding
//! "Hamming distance between X and Y equals k" as a polynomial-size
//! propositional formula whose internal gates become fresh letters `W`
//! constrained by equivalences. [`CircuitBuilder`] is that mechanism:
//! every [`CircuitBuilder::define`] call introduces a gate letter `w`
//! with the constraint `w ≡ gate-function`, and
//! [`CircuitBuilder::finish`] conjoins the gate definitions with the
//! output condition.
//!
//! Because every gate is defined by a biconditional, any assignment to
//! the circuit inputs extends to *exactly one* assignment of the gate
//! letters satisfying the definitions — the property that makes the
//! `W` letters harmless for query equivalence.

use revkb_logic::{Formula, Var, VarSupply};

/// A wire in a circuit under construction: either a constant or a
/// formula (an input letter or a defined gate letter).
pub type Wire = Formula;

/// Incremental builder of definitional circuits.
pub struct CircuitBuilder<'a, S: VarSupply> {
    defs: Vec<Formula>,
    aux: Vec<Var>,
    supply: &'a mut S,
}

impl<'a, S: VarSupply> CircuitBuilder<'a, S> {
    /// Start a builder drawing gate letters from `supply`.
    pub fn new(supply: &'a mut S) -> Self {
        Self {
            defs: Vec::new(),
            aux: Vec::new(),
            supply,
        }
    }

    /// Introduce a gate letter `w` constrained by `w ≡ f`, returning
    /// the wire `w`. Constants and bare literals pass through without a
    /// gate (they are already small).
    pub fn define(&mut self, f: Formula) -> Wire {
        match f {
            Formula::True | Formula::False | Formula::Var(_) => f,
            Formula::Not(ref inner) if matches!(**inner, Formula::Var(_)) => f,
            _ => {
                let w = self.supply.fresh_var();
                self.aux.push(w);
                self.defs.push(Formula::var(w).iff(f));
                Formula::var(w)
            }
        }
    }

    /// XOR gate.
    pub fn xor_gate(&mut self, a: Wire, b: Wire) -> Wire {
        self.define(a.xor(b))
    }

    /// AND gate.
    pub fn and_gate(&mut self, a: Wire, b: Wire) -> Wire {
        self.define(a.and(b))
    }

    /// OR gate.
    pub fn or_gate(&mut self, a: Wire, b: Wire) -> Wire {
        self.define(a.or(b))
    }

    /// Full adder: returns `(sum, carry)` for inputs `a + b + c`.
    pub fn full_adder(&mut self, a: Wire, b: Wire, c: Wire) -> (Wire, Wire) {
        let ab = self.xor_gate(a.clone(), b.clone());
        let sum = self.xor_gate(ab.clone(), c.clone());
        // carry = (a∧b) ∨ (c∧(a⊕b))
        let and_ab = self.and_gate(a, b);
        let and_cab = self.and_gate(c, ab);
        let carry = self.or_gate(and_ab, and_cab);
        (sum, carry)
    }

    /// Ripple-carry addition of two little-endian binary numbers
    /// (shorter one zero-extended). Returns the sum, one bit longer
    /// than the wider input.
    pub fn add(&mut self, a: &[Wire], b: &[Wire]) -> Vec<Wire> {
        let width = a.len().max(b.len());
        let mut out = Vec::with_capacity(width + 1);
        let mut carry: Wire = Formula::False;
        for i in 0..width {
            let ai = a.get(i).cloned().unwrap_or(Formula::False);
            let bi = b.get(i).cloned().unwrap_or(Formula::False);
            let (s, c) = self.full_adder(ai, bi, carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        out
    }

    /// Population count: the number of true wires among `bits`, as a
    /// little-endian binary number. Tree of ripple-carry adders —
    /// `O(n log n)` gates.
    pub fn popcount(&mut self, bits: &[Wire]) -> Vec<Wire> {
        match bits.len() {
            0 => vec![Formula::False],
            1 => vec![bits[0].clone()],
            n => {
                let (lo, hi) = bits.split_at(n / 2);
                let a = self.popcount(lo);
                let b = self.popcount(hi);
                self.add(&a, &b)
            }
        }
    }

    /// The Hamming-distance bits between two equal-length letter
    /// vectors: wire `i` is `xᵢ ≢ yᵢ`.
    pub fn diff_bits(&mut self, xs: &[Var], ys: &[Var]) -> Vec<Wire> {
        assert_eq!(xs.len(), ys.len(), "vector length mismatch");
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| self.xor_gate(Formula::var(x), Formula::var(y)))
            .collect()
    }

    /// Condition "little-endian number `bits` equals the constant `k`".
    /// No gate letters needed: a conjunction of literals.
    pub fn equals_const(&self, bits: &[Wire], k: u64) -> Formula {
        if bits.len() < 64 && k >= (1u64 << bits.len()) {
            return Formula::False;
        }
        Formula::and_all(bits.iter().enumerate().map(|(i, b)| {
            if k >> i & 1 == 1 {
                b.clone()
            } else {
                b.clone().not()
            }
        }))
    }

    /// Condition "number `a` is strictly less than number `b`"
    /// (little-endian, zero-extended). Direct `O(w²)` formula over the
    /// sum wires; no extra gates.
    pub fn less_than(&self, a: &[Wire], b: &[Wire]) -> Formula {
        let width = a.len().max(b.len());
        let bit = |v: &[Wire], i: usize| v.get(i).cloned().unwrap_or(Formula::False);
        // lt = ∨ⱼ ( ¬aⱼ ∧ bⱼ ∧ ⋀_{j'>j} (aⱼ' ≡ bⱼ') )
        Formula::or_all((0..width).map(|j| {
            let here = bit(a, j).not().and(bit(b, j));
            let above = Formula::and_all((j + 1..width).map(|j2| bit(a, j2).iff(bit(b, j2))));
            here.and(above)
        }))
    }

    /// Condition "number `bits` is at most the constant `k`".
    pub fn at_most_const(&self, bits: &[Wire], k: u64) -> Formula {
        // bits ≤ k  ⟺  ¬(k < bits): for each position j where k has a
        // 0, if bits[j] is 1 then some higher position must make
        // bits < k there — direct expansion:
        // bits ≤ k ⟺ ∨ over prefixes... simplest correct form:
        // bits ≤ k ⟺ ⋀ⱼ:kⱼ=0 ( bitsⱼ → ∨_{j'>j, kⱼ'=1} ¬bitsⱼ' ... )
        // To stay obviously correct we use: bits < k+1 via less_than
        // against the constant's wires.
        let width = bits.len().max(65 - (k + 1).leading_zeros() as usize);
        let kplus = k + 1;
        let const_wires: Vec<Wire> = (0..width)
            .map(|i| {
                if kplus >> i & 1 == 1 {
                    Formula::True
                } else {
                    Formula::False
                }
            })
            .collect();
        self.less_than(bits, &const_wires)
    }

    /// The gate letters introduced so far (the paper's `W`).
    pub fn aux_vars(&self) -> &[Var] {
        &self.aux
    }

    /// Close the circuit: the conjunction of every gate definition and
    /// the output condition.
    pub fn finish(self, output: Formula) -> Formula {
        Formula::and_all(self.defs.into_iter().chain([output]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate_circuit_mask;
    use revkb_logic::{Alphabet, CountingSupply};

    #[test]
    fn popcount_equals_const() {
        let inputs: Vec<Var> = (0..5).map(Var).collect();
        for k in 0..=5u64 {
            let mut supply = CountingSupply::new(100);
            let mut cb = CircuitBuilder::new(&mut supply);
            let wires: Vec<Wire> = inputs.iter().map(|&v| Formula::var(v)).collect();
            let sum = cb.popcount(&wires);
            let out = cb.equals_const(&sum, k);
            let f = cb.finish(out);
            for m in 0..32u64 {
                assert_eq!(
                    evaluate_circuit_mask(&f, &inputs, m),
                    m.count_ones() as u64 == k,
                    "popcount({m:b}) == {k}"
                );
            }
        }
    }

    #[test]
    fn unique_gate_extension() {
        // Every input assignment must extend to exactly one model of
        // the gate definitions — brute force over a small circuit.
        let inputs: Vec<Var> = (0..2).map(Var).collect();
        let mut supply = CountingSupply::new(100);
        let mut cb = CircuitBuilder::new(&mut supply);
        let wires: Vec<Wire> = inputs.iter().map(|&v| Formula::var(v)).collect();
        let _sum = cb.popcount(&wires);
        // Tautological output: keep only gate definitions.
        let f = cb.finish(Formula::True);
        let full = Alphabet::of_formula(&f);
        assert!(full.len() <= 12, "circuit unexpectedly large");
        let input_alpha = Alphabet::new(inputs.clone());
        let mut proj_counts = std::collections::HashMap::new();
        for m in full.models(&f) {
            *proj_counts
                .entry(full.project_mask(m, &input_alpha))
                .or_insert(0u32) += 1;
        }
        assert_eq!(proj_counts.len(), 4);
        assert!(proj_counts.values().all(|&c| c == 1));
    }

    #[test]
    fn adder_adds() {
        // 2-bit + 2-bit adder, all 16 input combinations.
        let a_vars: Vec<Var> = (0..2).map(Var).collect();
        let b_vars: Vec<Var> = (2..4).map(Var).collect();
        let inputs: Vec<Var> = a_vars.iter().chain(&b_vars).copied().collect();
        let a: Vec<Wire> = a_vars.iter().map(|&v| Formula::var(v)).collect();
        let b: Vec<Wire> = b_vars.iter().map(|&v| Formula::var(v)).collect();
        for target in 0..=6u64 {
            let mut supply = CountingSupply::new(100);
            let mut cb = CircuitBuilder::new(&mut supply);
            let sum = cb.add(&a, &b);
            assert_eq!(sum.len(), 3);
            let out = cb.equals_const(&sum, target);
            let f = cb.finish(out);
            for m in 0..16u64 {
                assert_eq!(
                    evaluate_circuit_mask(&f, &inputs, m),
                    (m & 3) + (m >> 2 & 3) == target,
                    "a+b == {target} at {m:b}"
                );
            }
        }
    }

    #[test]
    fn less_than_comparator() {
        let a_vars: Vec<Var> = (0..2).map(Var).collect();
        let b_vars: Vec<Var> = (2..4).map(Var).collect();
        let mut supply = CountingSupply::new(100);
        let cb = CircuitBuilder::new(&mut supply);
        let a: Vec<Wire> = a_vars.iter().map(|&v| Formula::var(v)).collect();
        let b: Vec<Wire> = b_vars.iter().map(|&v| Formula::var(v)).collect();
        let lt = cb.less_than(&a, &b);
        let alpha = Alphabet::new(a_vars.iter().chain(&b_vars).copied().collect());
        for m in 0..16u64 {
            let av = m & 3;
            let bv = m >> 2 & 3;
            assert_eq!(alpha.eval_mask(&lt, m), av < bv, "{av} < {bv}");
        }
    }

    #[test]
    fn at_most_const_correct() {
        let vars: Vec<Var> = (0..3).map(Var).collect();
        let mut supply = CountingSupply::new(100);
        let cb = CircuitBuilder::new(&mut supply);
        let wires: Vec<Wire> = vars.iter().map(|&v| Formula::var(v)).collect();
        for k in 0..=8u64 {
            let f = cb.at_most_const(&wires, k);
            let alpha = Alphabet::new(vars.clone());
            for m in 0..8u64 {
                assert_eq!(alpha.eval_mask(&f, m), m <= k, "{m} <= {k}");
            }
        }
    }

    #[test]
    fn equals_const_out_of_range() {
        let mut supply = CountingSupply::new(0);
        let cb = CircuitBuilder::<CountingSupply>::new(&mut supply);
        let bits = vec![Formula::True, Formula::False];
        assert_eq!(cb.equals_const(&bits, 9), Formula::False);
    }
}
