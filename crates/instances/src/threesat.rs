//! The paper's 3-SAT infrastructure (Definition 2.5).
//!
//! Instances of `3-SATₙ` are built on the fixed atom set
//! `Bₙ = {b₁,…,bₙ}`; `γₙᵐᵃˣ` is the set of *all* three-literal clauses
//! over `Bₙ` (on three distinct atoms), of which every instance is a
//! subset. The hard families of Theorems 3.1/3.3/3.6/6.5 attach one
//! guard letter (or guard column) to each clause of a clause universe.

use revkb_logic::Formula;
use revkb_logic::Var;

/// A three-literal clause over `Bₙ`: three literals, each a 0-based
/// atom index with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clause3 {
    /// The three literals as `(atom index, positive)` pairs.
    pub lits: [(usize, bool); 3],
}

impl Clause3 {
    /// The clause as a formula over the given `B` letters.
    pub fn to_formula(&self, b: &[Var]) -> Formula {
        Formula::or_all(self.lits.iter().map(|&(i, pos)| Formula::lit(b[i], pos)))
    }

    /// Evaluate under an assignment to `Bₙ` (bit `i` = atom `i`).
    pub fn eval(&self, assignment: u64) -> bool {
        self.lits
            .iter()
            .any(|&(i, pos)| (assignment >> i & 1 == 1) == pos)
    }
}

/// A 3-SAT instance: a subset of a clause universe over `Bₙ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeSat {
    /// Number of atoms `n`.
    pub n: usize,
    /// The clauses.
    pub clauses: Vec<Clause3>,
}

impl ThreeSat {
    /// Brute-force satisfiability (the ground truth the reductions are
    /// checked against; `n ≤ 24`).
    pub fn satisfiable(&self) -> bool {
        assert!(self.n <= 24, "brute force is for small instances");
        (0..1u64 << self.n).any(|a| self.clauses.iter().all(|c| c.eval(a)))
    }

    /// A satisfying assignment, if any, as a bitmask over `Bₙ`.
    pub fn satisfying_assignment(&self) -> Option<u64> {
        assert!(self.n <= 24);
        (0..1u64 << self.n).find(|&a| self.clauses.iter().all(|c| c.eval(a)))
    }

    /// The conjunction of the clauses over the given `B` letters.
    pub fn to_formula(&self, b: &[Var]) -> Formula {
        Formula::and_all(self.clauses.iter().map(|c| c.to_formula(b)))
    }
}

/// `γₙᵐᵃˣ`: all three-literal clauses on three *distinct* atoms of
/// `Bₙ`, in a fixed order — `8·C(n,3)` clauses, `Θ(n³)` as the paper
/// notes.
pub fn gamma_max(n: usize) -> Vec<Clause3> {
    let mut out = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                for signs in 0..8u8 {
                    out.push(Clause3 {
                        lits: [
                            (i, signs & 1 != 0),
                            (j, signs & 2 != 0),
                            (k, signs & 4 != 0),
                        ],
                    });
                }
            }
        }
    }
    out
}

/// A universe of `2n` degenerate (repeated-literal) clauses: for each
/// atom `bᵢ`, the clause `bᵢ ∨ bᵢ ∨ bᵢ` and the clause
/// `¬bᵢ ∨ ¬bᵢ ∨ ¬bᵢ`. A subset is satisfiable iff it contains no
/// contradictory pair, so the Theorem 3.6 family built on this
/// universe yields a revised base whose *exact minimum DNF* has `2ⁿ`
/// terms — measurable exponential growth of the best two-level
/// representation (used as Table 1 NO-cell evidence).
pub fn contradictory_pairs(n: usize) -> Vec<Clause3> {
    (0..n)
        .flat_map(|i| {
            [
                Clause3 {
                    lits: [(i, true); 3],
                },
                Clause3 {
                    lits: [(i, false); 3],
                },
            ]
        })
        .collect()
}

/// All `2^|universe|` instances over a clause universe (exhaustive
/// testing of the reductions; keep the universe small).
pub fn all_instances(n: usize, universe: &[Clause3]) -> Vec<ThreeSat> {
    assert!(universe.len() <= 16, "universe too large to enumerate");
    (0..1u64 << universe.len())
        .map(|mask| ThreeSat {
            n,
            clauses: universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &c)| c)
                .collect(),
        })
        .collect()
}

/// A random instance over a clause universe.
pub fn random_instance(
    n: usize,
    universe: &[Clause3],
    density: f64,
    rng: &mut impl rand::Rng,
) -> ThreeSat {
    ThreeSat {
        n,
        clauses: universe
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(density))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_max_count() {
        // 8·C(n,3).
        assert_eq!(gamma_max(3).len(), 8);
        assert_eq!(gamma_max(4).len(), 32);
        assert_eq!(gamma_max(5).len(), 80);
        assert!(gamma_max(2).is_empty());
    }

    #[test]
    fn clause_eval() {
        // (b0 ∨ ¬b1 ∨ b2)
        let c = Clause3 {
            lits: [(0, true), (1, false), (2, true)],
        };
        assert!(c.eval(0b001));
        assert!(c.eval(0b000)); // ¬b1 true
        assert!(!c.eval(0b010));
    }

    #[test]
    fn empty_instance_is_satisfiable() {
        let inst = ThreeSat {
            n: 3,
            clauses: vec![],
        };
        assert!(inst.satisfiable());
    }

    #[test]
    fn full_gamma_max_is_unsatisfiable() {
        // All 8 sign patterns on one triple cannot be satisfied.
        let inst = ThreeSat {
            n: 3,
            clauses: gamma_max(3),
        };
        assert!(!inst.satisfiable());
    }

    #[test]
    fn formula_matches_brute_force() {
        use revkb_logic::Alphabet;
        let universe = gamma_max(3);
        let b: Vec<Var> = (0..3).map(Var).collect();
        let alpha = Alphabet::new(b.clone());
        for inst in all_instances(3, &universe[..4]) {
            let f = inst.to_formula(&b);
            let sat_formula = !alpha.models(&f).is_empty();
            assert_eq!(sat_formula, inst.satisfiable(), "mismatch on {inst:?}");
        }
    }

    #[test]
    fn satisfying_assignment_satisfies() {
        let universe = gamma_max(3);
        for inst in all_instances(3, &universe[..5]) {
            if let Some(a) = inst.satisfying_assignment() {
                assert!(inst.clauses.iter().all(|c| c.eval(a)));
            } else {
                assert!(!inst.satisfiable());
            }
        }
    }
}
