//! The hard family of **Theorem 3.1** (GFUV is not query-compactable
//! unless NP ⊆ coNP/poly), and its **Theorem 4.1** bounded-`P`
//! transform.
//!
//! For a clause universe `γ ⊆ γₙᵐᵃˣ` the family uses the alphabet
//! `L = Bₙ ∪ C ∪ D ∪ {r}` with guard pairs `(cⱼ, dⱼ)` per clause:
//!
//! ```text
//! Tₙ = C ∪ D ∪ Bₙ ∪ {r}                          (a set of atoms)
//! Pₙ = [ (⋀¬bᵢ ∧ ¬r)  ∨  ⋀ⱼ(cⱼ → γⱼ) ]  ∧  ⋀ⱼ(cⱼ ≢ dⱼ)
//! Q_π = (⋀{cᵢ : γᵢ ∈ π} ∧ ⋀{dᵢ : γᵢ ∉ π}) → r
//! ```
//!
//! Theorem 3.1: `π` is satisfiable **iff** `Tₙ *GFUV Pₙ ⊨ Q_π`.
//!
//! Theorem 4.1 reduces to constant-size `P`: `T'ₙ = {f ∧ (¬s ∨ Pₙ) :
//! f ∈ Tₙ} ∪ {¬s}`, `P' = s`, preserving all the entailments over the
//! original alphabet.

use crate::threesat::{Clause3, ThreeSat};
use revkb_logic::{Formula, Signature, Var};
use revkb_revision::Theory;

/// The Theorem 3.1 family for one clause universe.
#[derive(Debug, Clone)]
pub struct Thm31Family {
    /// Letter names.
    pub sig: Signature,
    /// The `Bₙ` atoms.
    pub b: Vec<Var>,
    /// Guard atoms `cⱼ`, one per universe clause.
    pub c: Vec<Var>,
    /// Guard atoms `dⱼ`, one per universe clause.
    pub d: Vec<Var>,
    /// The flag atom `r`.
    pub r: Var,
    /// The clause universe (a subset of `γₙᵐᵃˣ`).
    pub universe: Vec<Clause3>,
    /// `Tₙ` — the set of atoms, as a formula-based theory.
    pub t: Theory,
    /// `Pₙ`.
    pub p: Formula,
}

impl Thm31Family {
    /// Build the family for `n` atoms over `universe`.
    pub fn new(n: usize, universe: Vec<Clause3>) -> Self {
        let mut sig = Signature::new();
        let b: Vec<Var> = (0..n).map(|i| sig.var(&format!("b{}", i + 1))).collect();
        let c: Vec<Var> = (0..universe.len())
            .map(|j| sig.var(&format!("c{}", j + 1)))
            .collect();
        let d: Vec<Var> = (0..universe.len())
            .map(|j| sig.var(&format!("d{}", j + 1)))
            .collect();
        let r = sig.var("r");

        let t = Theory::new(
            c.iter()
                .chain(&d)
                .chain(&b)
                .chain([&r])
                .map(|&v| Formula::var(v)),
        );

        let all_b_false_and_not_r = Formula::and_all(
            b.iter()
                .map(|&bi| Formula::var(bi).not())
                .chain([Formula::var(r).not()]),
        );
        let guards_imply_clauses = Formula::and_all(
            universe
                .iter()
                .zip(&c)
                .map(|(clause, &cj)| Formula::var(cj).implies(clause.to_formula(&b))),
        );
        let c_neq_d = Formula::and_all(
            c.iter()
                .zip(&d)
                .map(|(&cj, &dj)| Formula::var(cj).xor(Formula::var(dj))),
        );
        let p = all_b_false_and_not_r.or(guards_imply_clauses).and(c_neq_d);

        Self {
            sig,
            b,
            c,
            d,
            r,
            universe,
            t,
            p,
        }
    }

    /// Membership flags of `pi`'s clauses in the universe.
    fn membership(&self, pi: &ThreeSat) -> Vec<bool> {
        self.universe
            .iter()
            .map(|u| pi.clauses.contains(u))
            .collect()
    }

    /// The query `Q_π = W_π → r`.
    pub fn query(&self, pi: &ThreeSat) -> Formula {
        let member = self.membership(pi);
        let w = Formula::and_all(member.iter().enumerate().map(|(j, &inside)| {
            if inside {
                Formula::var(self.c[j])
            } else {
                Formula::var(self.d[j])
            }
        }));
        w.implies(Formula::var(self.r))
    }

    /// Combined size `|Tₙ| + |Pₙ|` (polynomial in `n`, per hypothesis
    /// 1 of Theorem 2.2).
    pub fn size(&self) -> usize {
        self.t.size() + self.p.size()
    }
}

/// Theorem 4.1's bounded transform of a Theorem 3.1 family: returns
/// `(T'ₙ, P' = s)` with `|P'| = 1`.
pub fn thm41_bounded_transform(family: &Thm31Family) -> (Theory, Formula, Var) {
    let mut sig = family.sig.clone();
    let s = sig.fresh("s");
    let guard = Formula::var(s).not().or(family.p.clone());
    let mut formulas: Vec<Formula> = family
        .t
        .formulas
        .iter()
        .map(|f| f.clone().and(guard.clone()))
        .collect();
    formulas.push(Formula::var(s).not());
    (Theory::new(formulas), Formula::var(s), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threesat::{all_instances, gamma_max};
    use revkb_revision::gfuv_entails;

    /// Exhaustive check of Theorem 3.1's reduction over a 4-clause
    /// universe: `π` satisfiable iff `Tₙ *GFUV Pₙ ⊨ Q_π`.
    #[test]
    fn reduction_is_correct_exhaustive() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(4).collect();
        let family = Thm31Family::new(3, universe.clone());
        for pi in all_instances(3, &universe) {
            let q = family.query(&pi);
            assert_eq!(
                gfuv_entails(&family.t, &family.p, &q),
                pi.satisfiable(),
                "Thm 3.1 reduction failed on {pi:?}"
            );
        }
    }

    #[test]
    fn family_size_is_polynomial() {
        // |T| + |P| grows like the universe size (Θ(n³) for γmax).
        let f3 = Thm31Family::new(3, gamma_max(3));
        let f4 = Thm31Family::new(4, gamma_max(4));
        let f5 = Thm31Family::new(5, gamma_max(5));
        // γmax sizes: 8, 32, 80 — growth of the family ≈ linear in it.
        let per_clause3 = f3.size() as f64 / 8.0;
        let per_clause5 = f5.size() as f64 / 80.0;
        assert!(per_clause5 < 2.0 * per_clause3, "superlinear in universe");
        assert!(f4.size() > f3.size());
    }

    /// Theorem 4.1: the transform preserves GFUV consequences while
    /// making `|P'| = 1`.
    #[test]
    fn bounded_transform_preserves_entailment() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(3).collect();
        let family = Thm31Family::new(3, universe.clone());
        let (t2, p2, _s) = thm41_bounded_transform(&family);
        assert_eq!(p2.size(), 1);
        for pi in all_instances(3, &universe) {
            let q = family.query(&pi);
            assert_eq!(
                gfuv_entails(&t2, &p2, &q),
                gfuv_entails(&family.t, &family.p, &q),
                "Thm 4.1 transform changed the consequence on {pi:?}"
            );
        }
    }
}
