//! Random workload generation for the benchmarks and property tests.

use rand::Rng;
use revkb_logic::{Formula, Var};

/// A random formula over variables `lo..lo+num_vars`, with the given
/// connective depth.
pub fn random_formula(rng: &mut impl Rng, depth: u32, num_vars: u32, lo: u32) -> Formula {
    if depth == 0 || rng.gen_ratio(1, 6) {
        let v = Var(lo + rng.gen_range(0..num_vars));
        return Formula::lit(v, rng.gen_bool(0.5));
    }
    let a = random_formula(rng, depth - 1, num_vars, lo);
    let b = random_formula(rng, depth - 1, num_vars, lo);
    match rng.gen_range(0..5) {
        0 => a.and(b),
        1 => a.or(b),
        2 => a.implies(b),
        3 => a.xor(b),
        _ => a.iff(b),
    }
}

/// A random *satisfiable* formula (rejection sampling).
pub fn random_satisfiable(rng: &mut impl Rng, depth: u32, num_vars: u32, lo: u32) -> Formula {
    loop {
        let f = random_formula(rng, depth, num_vars, lo);
        if revkb_sat::satisfiable(&f) {
            return f;
        }
    }
}

/// A random revision scenario: satisfiable `T` over `n` letters and a
/// satisfiable `P` over the first `p_vars` of them.
pub fn random_scenario(rng: &mut impl Rng, n: u32, p_vars: u32, depth: u32) -> (Formula, Formula) {
    let t = random_satisfiable(rng, depth, n, 0);
    let p = random_satisfiable(rng, depth.min(3), p_vars, 0);
    (t, p)
}

/// A random k-CNF over `n` variables with `m` clauses of width `k`.
pub fn random_kcnf(rng: &mut impl Rng, n: u32, m: usize, k: usize) -> Formula {
    Formula::and_all((0..m).map(|_| {
        let mut vars: Vec<u32> = Vec::with_capacity(k);
        while vars.len() < k {
            let v = rng.gen_range(0..n);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        Formula::or_all(
            vars.iter()
                .map(|&v| Formula::lit(Var(v), rng.gen_bool(0.5))),
        )
    }))
}

/// A random conjunction of literals (a complete or partial "state").
pub fn random_literal_conjunction(rng: &mut impl Rng, n: u32, width: u32) -> Formula {
    Formula::and_all((0..width).map(|_| {
        let v = Var(rng.gen_range(0..n));
        Formula::lit(v, rng.gen_bool(0.5))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_formula_respects_var_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let f = random_formula(&mut rng, 4, 5, 10);
            for v in f.vars() {
                assert!((10..15).contains(&v.0));
            }
        }
    }

    #[test]
    fn random_satisfiable_is_satisfiable() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let f = random_satisfiable(&mut rng, 3, 4, 0);
            assert!(revkb_sat::satisfiable(&f));
        }
    }

    #[test]
    fn scenario_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (t, p) = random_scenario(&mut rng, 6, 2, 3);
        assert!(revkb_sat::satisfiable(&t));
        assert!(revkb_sat::satisfiable(&p));
        assert!(p.vars().iter().all(|v| v.0 < 2));
        assert!(t.vars().iter().all(|v| v.0 < 6));
    }

    #[test]
    fn kcnf_structure() {
        let mut rng = StdRng::seed_from_u64(4);
        let f = random_kcnf(&mut rng, 8, 10, 3);
        if let Formula::And(clauses) = &f {
            assert_eq!(clauses.len(), 10);
        } else {
            panic!("expected a conjunction");
        }
        assert_eq!(f.size(), 30);
    }
}
