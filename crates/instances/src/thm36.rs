//! The hard families of **Theorem 3.6** (Dalal and Weber are not
//! logically-compactable unless NP ⊆ P/poly) and **Theorem 6.5**
//! (iterated bounded revision is not logically compactable for any of
//! the model-based operators).
//!
//! Both use the same knowledge base over `L = Bₙ ∪ Y ∪ C`:
//!
//! ```text
//! Φₙ = ⋀ᵢ (bᵢ ≢ yᵢ)          Γₙ = ⋀ⱼ (γⱼ ∨ ¬cⱼ)
//! Tₙ = Φₙ ∧ Γₙ
//! ```
//!
//! - Theorem 3.6 revises once with `Pₙ = ⋀ᵢ(¬bᵢ ∧ ¬yᵢ)`;
//! - Theorem 6.5 revises `n` times with the constant-size formulas
//!   `Pⁱ = ¬bᵢ ∧ ¬yᵢ`.
//!
//! In both cases, with `C_π = {cⱼ : γⱼ ∈ π}`: `π` is satisfiable
//! **iff** `C_π` is a model of the revised base (for Thm 3.6 under
//! Dalal and Weber; for Thm 6.5 under all six model-based operators,
//! whose results the proof shows coincide on this family).

use crate::threesat::{Clause3, ThreeSat};
use revkb_logic::{Formula, Interpretation, Signature, Var};

/// The Theorem 3.6 / 6.5 family for one clause universe.
#[derive(Debug, Clone)]
pub struct Thm36Family {
    /// Letter names.
    pub sig: Signature,
    /// The `Bₙ` atoms.
    pub b: Vec<Var>,
    /// The `Y` copies.
    pub y: Vec<Var>,
    /// One guard per universe clause.
    pub c: Vec<Var>,
    /// The clause universe.
    pub universe: Vec<Clause3>,
    /// `Tₙ = Φₙ ∧ Γₙ`.
    pub t: Formula,
    /// Theorem 3.6's single revision `Pₙ = ⋀ᵢ(¬bᵢ ∧ ¬yᵢ)`.
    pub p_single: Formula,
    /// Theorem 6.5's bounded revisions `Pⁱ = ¬bᵢ ∧ ¬yᵢ`, `i = 1…n`.
    pub p_sequence: Vec<Formula>,
}

impl Thm36Family {
    /// Build the family for `n` atoms over `universe`.
    pub fn new(n: usize, universe: Vec<Clause3>) -> Self {
        let mut sig = Signature::new();
        let b: Vec<Var> = (0..n).map(|i| sig.var(&format!("b{}", i + 1))).collect();
        let y: Vec<Var> = (0..n).map(|i| sig.var(&format!("y{}", i + 1))).collect();
        let c: Vec<Var> = (0..universe.len())
            .map(|j| sig.var(&format!("c{}", j + 1)))
            .collect();

        let phi = Formula::and_all(
            b.iter()
                .zip(&y)
                .map(|(&bi, &yi)| Formula::var(bi).xor(Formula::var(yi))),
        );
        let gamma = Formula::and_all(
            universe
                .iter()
                .zip(&c)
                .map(|(clause, &cj)| clause.to_formula(&b).or(Formula::var(cj).not())),
        );
        let t = phi.and(gamma);

        let p_single = Formula::and_all(
            b.iter()
                .zip(&y)
                .map(|(&bi, &yi)| Formula::var(bi).not().and(Formula::var(yi).not())),
        );
        let p_sequence: Vec<Formula> = b
            .iter()
            .zip(&y)
            .map(|(&bi, &yi)| Formula::var(bi).not().and(Formula::var(yi).not()))
            .collect();

        Self {
            sig,
            b,
            y,
            c,
            universe,
            t,
            p_single,
            p_sequence,
        }
    }

    /// The interpretation `C_π = {cⱼ : γⱼ ∈ π}`.
    pub fn c_pi(&self, pi: &ThreeSat) -> Interpretation {
        self.universe
            .iter()
            .enumerate()
            .filter(|(_, u)| pi.clauses.contains(u))
            .map(|(j, _)| self.c[j])
            .collect()
    }

    /// Combined size for the single-revision case.
    pub fn size_single(&self) -> usize {
        self.t.size() + self.p_single.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threesat::{all_instances, gamma_max};
    use revkb_logic::Alphabet;
    use revkb_revision::{revise_iterated_on, revise_on, ModelBasedOp};

    fn alphabet_of(family: &Thm36Family) -> Alphabet {
        Alphabet::new(
            family
                .b
                .iter()
                .chain(&family.y)
                .chain(&family.c)
                .copied()
                .collect(),
        )
    }

    /// Exhaustive Theorem 3.6 over a 4-clause universe (alphabet
    /// 3+3+4 = 10 letters): `C_π ⊨ Tₙ *D Pₙ` iff `C_π ⊨ Tₙ *Web Pₙ`
    /// iff `π` satisfiable.
    #[test]
    fn reduction_is_correct_exhaustive() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(4).collect();
        let family = Thm36Family::new(3, universe.clone());
        let alpha = alphabet_of(&family);
        let dalal = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
        let weber = revise_on(ModelBasedOp::Weber, &alpha, &family.t, &family.p_single);
        for pi in all_instances(3, &universe) {
            let c_pi = family.c_pi(&pi);
            let sat = pi.satisfiable();
            assert_eq!(dalal.contains(&c_pi), sat, "Dalal 3.6 failed on {pi:?}");
            assert_eq!(weber.contains(&c_pi), sat, "Weber 3.6 failed on {pi:?}");
        }
    }

    /// `k_{Tₙ,Pₙ} = n` as the proof of Theorem 3.6 computes.
    #[test]
    fn minimum_distance_is_n() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(3).collect();
        let family = Thm36Family::new(3, universe);
        assert_eq!(
            revkb_revision::distance::min_distance(&family.t, &family.p_single),
            Some(3)
        );
    }

    /// Exhaustive Theorem 6.5 over a 3-clause universe: after the
    /// sequence `P¹…Pⁿ`, all six operators coincide and select `C_π`
    /// iff `π` is satisfiable.
    #[test]
    fn iterated_reduction_all_operators() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(3).collect();
        let family = Thm36Family::new(3, universe.clone());
        let alpha = alphabet_of(&family);
        let results: Vec<_> = ModelBasedOp::ALL
            .iter()
            .map(|&op| {
                (
                    op,
                    revise_iterated_on(op, &alpha, &family.t, &family.p_sequence),
                )
            })
            .collect();
        // The proof shows the model sets coincide across operators.
        for window in results.windows(2) {
            assert_eq!(
                window[0].1,
                window[1].1,
                "Thm 6.5: {} and {} differ",
                window[0].0.name(),
                window[1].0.name()
            );
        }
        for pi in all_instances(3, &universe) {
            let c_pi = family.c_pi(&pi);
            let sat = pi.satisfiable();
            for (op, ms) in &results {
                assert_eq!(
                    ms.contains(&c_pi),
                    sat,
                    "Thm 6.5 failed for {} on {pi:?}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn family_size_is_polynomial() {
        let sizes: Vec<usize> = [3usize, 4, 5]
            .iter()
            .map(|&n| Thm36Family::new(n, gamma_max(n)).size_single())
            .collect();
        assert!(sizes[2] < 6 * sizes[1], "suspicious growth: {sizes:?}");
    }
}
