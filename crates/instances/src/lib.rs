//! # revkb-instances
//!
//! Instance and workload generation for the `revkb` reproduction:
//!
//! - the paper's 3-SAT partition and clause universes
//!   ([`threesat`]: `3-SATₙ`, `γₙᵐᵃˣ`);
//! - the hard families behind every non-compactability theorem
//!   ([`thm31`]: Thms 3.1 & 4.1, [`thm33`]: Thm 3.3, [`thm36`]:
//!   Thms 3.6 & 6.5);
//! - the explicit blow-up examples of §3.1 ([`explosion`]: Nebel's
//!   `2^m`-world example and Winslett's constant-`P` chain);
//! - random workloads ([`random`]);
//! - the paper's worked examples ([`examples`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod examples;
pub mod explosion;
pub mod random;
pub mod thm31;
pub mod thm33;
pub mod thm36;
pub mod threesat;

pub use examples::{
    office_example, running_example, section4_example, section5_example, section6_example,
    syntax_example, Scenario,
};
pub use explosion::{NebelExample, WinslettChain};
pub use random::{
    random_formula, random_kcnf, random_literal_conjunction, random_satisfiable, random_scenario,
};
pub use thm31::{thm41_bounded_transform, Thm31Family};
pub use thm33::Thm33Family;
pub use thm36::Thm36Family;
pub use threesat::{
    all_instances, contradictory_pairs, gamma_max, random_instance, Clause3, ThreeSat,
};
