//! The paper's worked examples, packaged as ready-to-use scenarios
//! (tested end-to-end in `tests/paper_examples.rs` at the workspace
//! root).

use revkb_logic::{Formula, Signature, Var};
use revkb_revision::Theory;

/// A named `(T, P)` scenario from the paper.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Letter names.
    pub sig: Signature,
    /// The knowledge base.
    pub t: Formula,
    /// The revising formula.
    pub p: Formula,
}

/// §1's office example, revision reading: `T = g ∨ b` ("George or
/// Bill is in"), `P = ¬g` ("George is in the corridor").
pub fn office_example() -> Scenario {
    let mut sig = Signature::new();
    let g = sig.var("george");
    let b = sig.var("bill");
    Scenario {
        t: Formula::var(g).or(Formula::var(b)),
        p: Formula::var(g).not(),
        sig,
    }
}

/// §2.2.1's syntax-sensitivity example: the two logically equivalent
/// theories `T₁ = {a, b}`, `T₂ = {a, a → b}` and `P = ¬b`.
pub fn syntax_example() -> (Signature, Theory, Theory, Formula) {
    let mut sig = Signature::new();
    let a = sig.var("a");
    let b = sig.var("b");
    let t1 = Theory::new([Formula::var(a), Formula::var(b)]);
    let t2 = Theory::new([Formula::var(a), Formula::var(a).implies(Formula::var(b))]);
    (sig, t1, t2, Formula::var(b).not())
}

/// §2.2.2's running example: `T = a ∧ b ∧ c`,
/// `P = (¬a∧¬b∧¬d) ∨ (¬c∧b∧(a ≢ d))` over `{a,b,c,d}`.
pub fn running_example() -> Scenario {
    let mut sig = Signature::new();
    let a = sig.var("a");
    let b = sig.var("b");
    let c = sig.var("c");
    let d = sig.var("d");
    let t = Formula::var(a).and(Formula::var(b)).and(Formula::var(c));
    let p1 = Formula::var(a)
        .not()
        .and(Formula::var(b).not())
        .and(Formula::var(d).not());
    let p2 = Formula::var(c)
        .not()
        .and(Formula::var(b))
        .and(Formula::var(a).xor(Formula::var(d)));
    Scenario {
        t,
        p: p1.or(p2),
        sig,
    }
}

/// §4.1/§4.2's example: `T = a∧b∧c∧d∧e`, `P = ¬a ∨ ¬b`.
pub fn section4_example() -> Scenario {
    let mut sig = Signature::new();
    let vars: Vec<Var> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(|n| sig.var(n))
        .collect();
    Scenario {
        t: Formula::and_all(vars.iter().map(|&v| Formula::var(v))),
        p: Formula::var(vars[0]).not().or(Formula::var(vars[1]).not()),
        sig,
    }
}

/// §5's iterated example: `T = x₁∧…∧x₅`, `P¹ = ¬x₁ ∨ ¬x₂`,
/// `P² = ¬x₅`.
pub fn section5_example() -> (Signature, Formula, Vec<Formula>) {
    let mut sig = Signature::new();
    let xs: Vec<Var> = (1..=5).map(|i| sig.var(&format!("x{i}"))).collect();
    let t = Formula::and_all(xs.iter().map(|&v| Formula::var(v)));
    let p1 = Formula::var(xs[0]).not().or(Formula::var(xs[1]).not());
    let p2 = Formula::var(xs[4]).not();
    (sig, t, vec![p1, p2])
}

/// §6's bounded example: `T = x₁∧…∧x₅`, `P = ¬x₁`.
pub fn section6_example() -> Scenario {
    let mut sig = Signature::new();
    let xs: Vec<Var> = (1..=5).map(|i| sig.var(&format!("x{i}"))).collect();
    Scenario {
        t: Formula::and_all(xs.iter().map(|&v| Formula::var(v))),
        p: Formula::var(xs[0]).not(),
        sig,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_revision::{revise, ModelBasedOp};

    #[test]
    fn office_revision_concludes_bill() {
        let s = office_example();
        let bill = Formula::var(s.sig.lookup("bill").unwrap());
        // Revision-style operators conclude b.
        for op in [
            ModelBasedOp::Dalal,
            ModelBasedOp::Satoh,
            ModelBasedOp::Weber,
            ModelBasedOp::Borgida,
        ] {
            assert!(revise(op, &s.t, &s.p).entails(&bill), "{}", op.name());
        }
        // Update-style Winslett does not (the paper's point).
        assert!(!revise(ModelBasedOp::Winslett, &s.t, &s.p).entails(&bill));
    }

    #[test]
    fn scenarios_are_satisfiable() {
        for s in [
            office_example(),
            running_example(),
            section4_example(),
            section6_example(),
        ] {
            assert!(revkb_sat::satisfiable(&s.t));
            assert!(revkb_sat::satisfiable(&s.p));
        }
    }
}
