//! The hard family of **Theorem 3.3** (Forbus is not
//! query-compactable unless NP ⊆ coNP/poly).
//!
//! Each universe clause `γⱼ` gets a *column* of `n+2` guard atoms
//! `c¹ⱼ…cⁿ⁺²ⱼ`, forced equal by `Γₙ = ⋀ⱼ⋀ᵢ (c¹ⱼ ≡ cᵢⱼ)` so that
//! models encoding different clause sets are at distance ≥ n+2 while
//! models sharing the clause set are within distance n+1:
//!
//! ```text
//! Tₙ = Γₙ ∧ ⋀Bₙ ∧ r
//! Pₙ = [ (⋀¬bᵢ ∧ ¬r) ∨ ⋀ⱼ(c¹ⱼ → γⱼ) ] ∧ Γₙ
//! M_π = ⋃ᵢ {cᵢⱼ : γⱼ ∈ π}          (all Bₙ and r false)
//! ```
//!
//! Theorem 3.3: `M_π ⊨ Tₙ *F Pₙ` **iff** `π` is unsatisfiable
//! (equivalently `Tₙ *F Pₙ ⊨ Q_π` iff `π` satisfiable, where `Q_π` is
//! the clause excluding `M_π`).

use crate::threesat::{Clause3, ThreeSat};
use revkb_logic::{Formula, Interpretation, Signature, Var};

/// The Theorem 3.3 family for one clause universe.
#[derive(Debug, Clone)]
pub struct Thm33Family {
    /// Letter names.
    pub sig: Signature,
    /// The `Bₙ` atoms.
    pub b: Vec<Var>,
    /// Guard columns: `c[i][j]` is `cⁱ⁺¹ⱼ₊₁` (row `i`, clause `j`);
    /// `n + 2` rows.
    pub c: Vec<Vec<Var>>,
    /// The flag atom `r`.
    pub r: Var,
    /// The clause universe.
    pub universe: Vec<Clause3>,
    /// `Tₙ` as a single formula (model-based input).
    pub t: Formula,
    /// `Pₙ`.
    pub p: Formula,
}

impl Thm33Family {
    /// Build the family for `n` atoms over `universe`.
    pub fn new(n: usize, universe: Vec<Clause3>) -> Self {
        let mut sig = Signature::new();
        let b: Vec<Var> = (0..n).map(|i| sig.var(&format!("b{}", i + 1))).collect();
        let rows = n + 2;
        let c: Vec<Vec<Var>> = (0..rows)
            .map(|i| {
                (0..universe.len())
                    .map(|j| sig.var(&format!("c{}_{}", i + 1, j + 1)))
                    .collect()
            })
            .collect();
        let r = sig.var("r");

        // Γₙ: all rows equal to row 1.
        let gamma_eq = Formula::and_all(
            (0..universe.len())
                .flat_map(|j| (1..rows).map(move |i| (i, j)))
                .map(|(i, j)| Formula::var(c[0][j]).iff(Formula::var(c[i][j]))),
        );

        let t = gamma_eq
            .clone()
            .and(Formula::and_all(b.iter().map(|&bi| Formula::var(bi))))
            .and(Formula::var(r));

        let all_b_false_and_not_r = Formula::and_all(
            b.iter()
                .map(|&bi| Formula::var(bi).not())
                .chain([Formula::var(r).not()]),
        );
        let guards_imply_clauses = Formula::and_all(
            universe
                .iter()
                .enumerate()
                .map(|(j, clause)| Formula::var(c[0][j]).implies(clause.to_formula(&b))),
        );
        let p = all_b_false_and_not_r.or(guards_imply_clauses).and(gamma_eq);

        Self {
            sig,
            b,
            c,
            r,
            universe,
            t,
            p,
        }
    }

    /// The interpretation `M_π`: every guard of a `π`-clause true (in
    /// all rows), everything else false.
    pub fn m_pi(&self, pi: &ThreeSat) -> Interpretation {
        let mut m = Interpretation::new();
        for (j, u) in self.universe.iter().enumerate() {
            if pi.clauses.contains(u) {
                for row in &self.c {
                    m.insert(row[j]);
                }
            }
        }
        m
    }

    /// The query `Q_π` — the clause that is false exactly at `M_π`:
    /// some off-`π` guard true, some `π` guard false, some `b` true,
    /// or `r`.
    pub fn query(&self, pi: &ThreeSat) -> Formula {
        let mut lits: Vec<Formula> = Vec::new();
        for (j, u) in self.universe.iter().enumerate() {
            let inside = pi.clauses.contains(u);
            for row in &self.c {
                if inside {
                    lits.push(Formula::var(row[j]).not());
                } else {
                    lits.push(Formula::var(row[j]));
                }
            }
        }
        lits.extend(self.b.iter().map(|&bi| Formula::var(bi)));
        lits.push(Formula::var(self.r));
        Formula::or_all(lits)
    }

    /// Combined size `|Tₙ| + |Pₙ|`.
    pub fn size(&self) -> usize {
        self.t.size() + self.p.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threesat::{all_instances, gamma_max};
    use revkb_logic::Alphabet;
    use revkb_revision::{revise_on, ModelBasedOp};

    /// Exhaustive check of Theorem 3.3 over a 2-clause universe
    /// (alphabet 3 + 5·2 + 1 = 14 letters): `M_π` is a model of
    /// `Tₙ *F Pₙ` iff `π` is unsatisfiable.
    #[test]
    fn reduction_is_correct_exhaustive() {
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(2).collect();
        let family = Thm33Family::new(3, universe.clone());
        let alpha = Alphabet::of_formulas([&family.t, &family.p]);
        let revised = revise_on(ModelBasedOp::Forbus, &alpha, &family.t, &family.p);
        for pi in all_instances(3, &universe) {
            let m = family.m_pi(&pi);
            assert_eq!(
                revised.contains(&m),
                !pi.satisfiable(),
                "Thm 3.3 reduction failed on {pi:?}"
            );
            // Query form: T *F P ⊨ Q_π iff π satisfiable.
            assert_eq!(
                revised.entails(&family.query(&pi)),
                pi.satisfiable(),
                "Thm 3.3 query form failed on {pi:?}"
            );
        }
    }

    #[test]
    fn m_pi_is_model_of_p() {
        // M_π always satisfies Pₙ (first disjunct + equal columns).
        let universe: Vec<Clause3> = gamma_max(3).into_iter().take(2).collect();
        let family = Thm33Family::new(3, universe.clone());
        for pi in all_instances(3, &universe) {
            assert!(family.p.eval(&family.m_pi(&pi)));
        }
    }

    #[test]
    fn family_size_is_polynomial() {
        let sizes: Vec<usize> = [3usize, 4, 5]
            .iter()
            .map(|&n| Thm33Family::new(n, gamma_max(n)).size())
            .collect();
        // γmax grows Θ(n³) and columns add a factor n: Θ(n⁴) overall.
        // Check it's nowhere near exponential: n=5 vs n=4 under 8x.
        assert!(sizes[2] < 8 * sizes[1], "suspicious growth: {sizes:?}");
    }
}
