//! The two explicit blow-up examples of §3.1: Nebel's `(T₁, P₁)` with
//! `2^m` possible worlds, and Winslett's chain `(T₂, P₂)` showing the
//! blow-up persists even with a *constant-size* revising formula.

use revkb_logic::{Formula, Signature, Var};
use revkb_revision::Theory;

/// Nebel's example: `T₁ = {x₁,…,xₘ, y₁,…,yₘ}`,
/// `P₁ = ⋀ᵢ (xᵢ ≢ yᵢ)`. `W(T₁,P₁)` has exactly `2^m` elements.
///
/// ```
/// use revkb_instances::NebelExample;
/// let ex = NebelExample::new(4);
/// assert_eq!(revkb_revision::world_count(&ex.t, &ex.p, 1 << 10), Some(16));
/// ```
#[derive(Debug, Clone)]
pub struct NebelExample {
    /// Letter names.
    pub sig: Signature,
    /// The `x` atoms.
    pub xs: Vec<Var>,
    /// The `y` atoms.
    pub ys: Vec<Var>,
    /// `T₁` (a set of atoms).
    pub t: Theory,
    /// `P₁`.
    pub p: Formula,
}

impl NebelExample {
    /// Build the example for a given `m`.
    pub fn new(m: usize) -> Self {
        let mut sig = Signature::new();
        let xs: Vec<Var> = (0..m).map(|i| sig.var(&format!("x{}", i + 1))).collect();
        let ys: Vec<Var> = (0..m).map(|i| sig.var(&format!("y{}", i + 1))).collect();
        let t = Theory::new(xs.iter().chain(&ys).map(|&v| Formula::var(v)));
        let p = Formula::and_all(
            xs.iter()
                .zip(&ys)
                .map(|(&x, &y)| Formula::var(x).xor(Formula::var(y))),
        );
        Self { sig, xs, ys, t, p }
    }
}

/// Winslett's example: the chain theory
///
/// ```text
/// T₂ = { x₁, y₁, z₁ ≡ (¬x₁ ∨ ¬y₁),
///        xᵢ, yᵢ, zᵢ ≡ (zᵢ₋₁ ∧ (¬xᵢ ∨ ¬yᵢ)),  i = 2…m }
/// P₂ = zₘ
/// ```
///
/// `|P₂|` is constant yet `|W(T₂,P₂)|` is exponential in `m`: to make
/// `zₘ` true while keeping the definitions one must drop one of
/// `xᵢ, yᵢ` at every level.
#[derive(Debug, Clone)]
pub struct WinslettChain {
    /// Letter names.
    pub sig: Signature,
    /// The `x` atoms.
    pub xs: Vec<Var>,
    /// The `y` atoms.
    pub ys: Vec<Var>,
    /// The `z` atoms.
    pub zs: Vec<Var>,
    /// `T₂`.
    pub t: Theory,
    /// `P₂ = zₘ`.
    pub p: Formula,
}

impl WinslettChain {
    /// Build the chain of length `m ≥ 1`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        let mut sig = Signature::new();
        let xs: Vec<Var> = (0..m).map(|i| sig.var(&format!("x{}", i + 1))).collect();
        let ys: Vec<Var> = (0..m).map(|i| sig.var(&format!("y{}", i + 1))).collect();
        let zs: Vec<Var> = (0..m).map(|i| sig.var(&format!("z{}", i + 1))).collect();
        let mut formulas = Vec::with_capacity(3 * m);
        for i in 0..m {
            formulas.push(Formula::var(xs[i]));
            formulas.push(Formula::var(ys[i]));
            let no_both = Formula::var(xs[i]).not().or(Formula::var(ys[i]).not());
            let body = if i == 0 {
                no_both
            } else {
                Formula::var(zs[i - 1]).and(no_both)
            };
            formulas.push(Formula::var(zs[i]).iff(body));
        }
        let p = Formula::var(zs[m - 1]);
        Self {
            sig,
            xs,
            ys,
            zs,
            t: Theory::new(formulas),
            p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_revision::{gfuv_explicit, possible_worlds, world_count};

    #[test]
    fn nebel_world_count_is_2_to_m() {
        for m in 1..=5 {
            let ex = NebelExample::new(m);
            assert_eq!(world_count(&ex.t, &ex.p, 1 << 12), Some(1 << m), "m={m}");
        }
    }

    #[test]
    fn nebel_worlds_pick_one_per_pair() {
        let ex = NebelExample::new(3);
        let worlds = possible_worlds(&ex.t, &ex.p, 100).unwrap();
        for w in worlds {
            // Exactly one of xᵢ (index i) and yᵢ (index m+i) per i.
            for i in 0..3 {
                let has_x = w.contains(&i);
                let has_y = w.contains(&(3 + i));
                assert!(has_x ^ has_y, "world {w:?} keeps both/neither of pair {i}");
            }
        }
    }

    #[test]
    fn nebel_explicit_size_grows_exponentially() {
        let mut sizes = Vec::new();
        for m in 1..=6 {
            let ex = NebelExample::new(m);
            let explicit = gfuv_explicit(&ex.t, &ex.p, 1 << 12).unwrap();
            sizes.push(explicit.size());
        }
        // Strictly ~2x growth per step.
        for w in sizes.windows(2) {
            assert!(w[1] >= 2 * w[0] - 4, "not exponential: {sizes:?}");
        }
    }

    #[test]
    fn winslett_chain_worlds_exponential_with_constant_p() {
        for m in 1..=4usize {
            let ex = WinslettChain::new(m);
            assert_eq!(ex.p.size(), 1);
            let count = world_count(&ex.t, &ex.p, 1 << 12).unwrap();
            assert!(
                count >= 1 << m,
                "m={m}: only {count} worlds, expected ≥ {}",
                1 << m
            );
        }
    }

    #[test]
    fn nebel_priorities_can_collapse_the_explosion() {
        // Putting all x's in a higher priority class than the y's
        // collapses Nebel's 2^m worlds to a single preferred
        // subtheory: keep every xᵢ (maximal in class 1), forcing every
        // yᵢ out.
        let ex = NebelExample::new(4);
        let class1 = Theory::new(ex.xs.iter().map(|&v| Formula::var(v)));
        let class2 = Theory::new(ex.ys.iter().map(|&v| Formula::var(v)));
        let subs =
            revkb_revision::nebel_preferred_subtheories(&[class1, class2], &ex.p, 1 << 12).unwrap();
        assert_eq!(subs.len(), 1);
        // All four x's kept, no y's.
        assert_eq!(subs[0].iter().filter(|(c, _)| *c == 0).count(), 4);
        assert_eq!(subs[0].iter().filter(|(c, _)| *c == 1).count(), 0);
        // Flat (single-class) Nebel still explodes like GFUV.
        let flat = revkb_revision::nebel_preferred_subtheories(
            std::slice::from_ref(&ex.t),
            &ex.p,
            1 << 12,
        )
        .unwrap();
        assert_eq!(flat.len(), 16);
    }

    #[test]
    fn winslett_chain_worlds_are_consistent_with_p() {
        let ex = WinslettChain::new(3);
        let worlds = possible_worlds(&ex.t, &ex.p, 1 << 12).unwrap();
        for w in &worlds {
            let theory = Formula::and_all(
                w.iter()
                    .map(|&i| ex.t.formulas[i].clone())
                    .chain([ex.p.clone()]),
            );
            assert!(revkb_sat::satisfiable(&theory));
        }
    }
}
