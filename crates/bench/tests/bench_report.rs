//! The `BENCH_*.json` contract: the report the harness writes must be
//! valid JSON by the workspace's own checker, parse into the schema
//! the baseline comparator expects, round-trip through a
//! self-comparison with zero regressions, and still catch a genuine
//! slowdown when one is injected.

use revkb_bench::suite::{
    compare_against_baseline, report_json, run_suite, SuiteConfig, BENCH_SCHEMA_VERSION,
};
use revkb_bench::RunMeta;
use revkb_server::Json;

/// One tiny suite run shared by every assertion: the suite toggles
/// process-global telemetry state and binds loopback sockets, so it
/// runs once, not once per test.
fn tiny_run() -> (SuiteConfig, RunMeta, Vec<revkb_bench::suite::BenchResult>) {
    let cfg = SuiteConfig {
        seed: 7,
        trials: 1,
        warmup: 0,
        tolerance_pct: None,
    };
    let meta = RunMeta::capture();
    let results = run_suite(&cfg);
    (cfg, meta, results)
}

#[test]
fn report_round_trips_schema_and_detects_injected_regression() {
    let (cfg, meta, results) = tiny_run();
    assert!(!results.is_empty());
    let report = report_json(&cfg, &meta, &results);

    // Valid by the workspace's own strict JSON checker...
    assert!(
        revkb_obs::validate_json(&report),
        "report is not valid JSON"
    );
    // ...and by the server's parser, which is what --baseline uses.
    let parsed = Json::parse(&report).expect("report parses");
    assert_eq!(
        parsed.get("bench").and_then(Json::as_str),
        Some("revkb-bench")
    );
    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(BENCH_SCHEMA_VERSION as u64)
    );
    let run_meta = parsed.get("run_meta").expect("report carries run_meta");
    for key in [
        "threads",
        "trace_mode",
        "cpu_count",
        "seed",
        "trials",
        "warmup",
    ] {
        assert!(run_meta.get(key).is_some(), "run_meta is missing {key}");
    }
    let benchmarks = parsed
        .get("benchmarks")
        .and_then(Json::as_array)
        .expect("benchmarks array");
    assert_eq!(benchmarks.len(), results.len());
    for b in benchmarks {
        for key in ["name", "unit", "median", "trials", "tolerance_pct"] {
            assert!(b.get(key).is_some(), "benchmark entry is missing {key}");
        }
        assert_eq!(b.get("unit").and_then(Json::as_str), Some("micros"));
    }

    // Self-comparison: the very report we just wrote is a clean
    // baseline for the run that produced it.
    let comparisons = compare_against_baseline(&results, &report).expect("self-compare");
    assert_eq!(comparisons.len(), results.len());
    assert!(
        comparisons.iter().all(|c| !c.regressed),
        "a run must never regress against itself"
    );

    // Inject a genuine slowdown — far beyond both the relative
    // tolerance and the absolute floor — into one benchmark and the
    // comparator must flag exactly that one.
    let mut slowed = results.clone();
    slowed[0].median += 100_000.0;
    let comparisons = compare_against_baseline(&slowed, &report).expect("compare slowed");
    let flagged: Vec<&str> = comparisons
        .iter()
        .filter(|c| c.regressed)
        .map(|c| c.name.as_str())
        .collect();
    assert_eq!(flagged, vec![results[0].name.as_str()]);

    // A baseline from a different schema epoch is refused, not
    // silently misread.
    let future = report.replacen(
        &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
        &format!("\"schema_version\": {}", BENCH_SCHEMA_VERSION + 1),
        1,
    );
    assert!(compare_against_baseline(&results, &future).is_err());
}

fn committed_report_names(file: &str) -> Vec<String> {
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    let report = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed report {path}: {e}"));
    assert!(revkb_obs::validate_json(&report));
    let parsed = Json::parse(&report).expect("report parses");
    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_u64),
        Some(BENCH_SCHEMA_VERSION as u64),
        "{file}"
    );
    parsed
        .get("benchmarks")
        .and_then(Json::as_array)
        .expect("benchmarks array")
        .iter()
        .map(|b| b.get("name").and_then(Json::as_str).expect("name").into())
        .collect()
}

/// The committed `BENCH_PR6.json` is the baseline CI compares against
/// and `BENCH_PR7.json` is the current report: both must stay valid
/// and parseable with the schema this build supports, and the current
/// report must cover the full named suite the harness runs today.
#[test]
fn committed_reports_are_valid_schema_v1() {
    let baseline = committed_report_names("BENCH_PR6.json");
    for name in [
        "compile.dalal",
        "compile.winslett",
        "query.sequential",
        "query.parallel",
        "bdd.apply",
        "logic.tseitin",
        "cache.touch",
        "server.revise.cold",
        "server.revise.warm",
        "server.boot.snapshot",
        "server.boot.replay",
    ] {
        assert!(
            baseline.iter().any(|n| n == name),
            "baseline is missing {name}"
        );
    }
    let current = committed_report_names("BENCH_PR7.json");
    for name in [
        "compile.dalal",
        "compile.winslett",
        "query.sequential",
        "query.parallel",
        "bdd.apply",
        "logic.tseitin",
        "cache.touch",
        "server.revise.cold",
        "server.revise.warm",
        "server.boot.snapshot",
        "server.boot.replay",
        "repl.catchup",
        "repl.read_fanout",
    ] {
        assert!(
            current.iter().any(|n| n == name),
            "current report is missing {name}"
        );
    }
}
