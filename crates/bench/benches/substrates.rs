//! Timing of the substrates: CDCL solving, Tseitin transformation,
//! BDD construction, and the EXA distance circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_bdd::BddManager;
use revkb_circuits::exa;
use revkb_instances::random_kcnf;
use revkb_logic::{tseitin_auto, CountingSupply, Var};

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_sat");
    let mut rng = StdRng::seed_from_u64(2);
    // Random 3-SAT near the phase transition (m/n ≈ 4.26).
    for n in [40u32, 80, 120] {
        let m = (n as f64 * 4.26) as usize;
        let f = random_kcnf(&mut rng, n, m, 3);
        group.bench_with_input(BenchmarkId::new("random3sat", n), &f, |b, f| {
            b.iter(|| revkb_sat::satisfiable(f))
        });
    }
    group.finish();
}

fn bench_tseitin(c: &mut Criterion) {
    let mut group = c.benchmark_group("tseitin");
    let mut rng = StdRng::seed_from_u64(3);
    for n in [50u32, 100] {
        let f = random_kcnf(&mut rng, n, 4 * n as usize, 3);
        group.bench_with_input(BenchmarkId::new("kcnf", n), &f, |b, f| {
            b.iter(|| tseitin_auto(f).len())
        });
    }
    group.finish();
}

fn bench_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build");
    let mut rng = StdRng::seed_from_u64(4);
    for n in [10u32, 14, 18] {
        let f = random_kcnf(&mut rng, n, 2 * n as usize, 3);
        group.bench_with_input(BenchmarkId::new("kcnf", n), &f, |b, f| {
            b.iter(|| {
                let mut mgr = BddManager::new();
                let node = mgr.from_formula(f);
                mgr.size(node)
            })
        });
    }
    group.finish();
}

fn bench_exa(c: &mut Criterion) {
    let mut group = c.benchmark_group("exa_circuit");
    for n in [16usize, 64, 256] {
        let xs: Vec<Var> = (0..n as u32).map(Var).collect();
        let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| {
                let mut supply = CountingSupply::new(4 * n as u32);
                exa(n / 2, &xs, &ys, &mut supply).size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_tseitin, bench_bdd, bench_exa);
criterion_main!(benches);
