//! Timing of the analysis machinery: exact two-level minimisation,
//! Horn closure, direct model checking, and the §4.2 disjunct-pruning
//! pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revkb_logic::{Alphabet, Formula, Var};
use revkb_revision::compact::{prune_disjuncts, winslett_bounded};
use revkb_revision::minimize::minimum_dnf;
use revkb_revision::{horn_lub, model_check, ModelBasedOp, ModelSet};

fn bench_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quine_mccluskey");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    // QM's pairwise combining explodes with dense on-sets; keep the
    // bench at sparse densities and modest alphabets.
    for n in [5usize, 6, 7] {
        let minterms: Vec<u64> = (0..1u64 << n).filter(|_| rng.gen_bool(0.15)).collect();
        group.bench_with_input(BenchmarkId::new("min_dnf", n), &minterms, |b, ms| {
            b.iter(|| minimum_dnf(ms, n).literal_count())
        });
    }
    group.finish();
}

fn bench_horn(c: &mut Criterion) {
    let mut group = c.benchmark_group("horn_closure");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    for n in [6usize, 8] {
        let alpha = Alphabet::new((0..n as u32).map(Var).collect());
        let masks: Vec<u64> = (0..1u64 << n).filter(|_| rng.gen_bool(0.2)).collect();
        let ms = ModelSet::new(alpha, masks);
        group.bench_with_input(BenchmarkId::new("lub", n), &ms, |b, ms| {
            b.iter(|| horn_lub(ms).len())
        });
    }
    group.finish();
}

fn bench_model_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_model_check");
    let n = 12u32;
    let t = Formula::and_all((0..n).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    let m: revkb_logic::Interpretation = (1..n).map(Var).collect();
    for op in [
        ModelBasedOp::Dalal,
        ModelBasedOp::Weber,
        ModelBasedOp::Winslett,
    ] {
        group.bench_function(BenchmarkId::new(op.name(), n), |b| {
            b.iter(|| model_check(op, &m, &t, &p).unwrap())
        });
    }
    group.finish();
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjunct_pruning");
    for n in [8u32, 16] {
        let t = Formula::and_all((0..n).map(|i| Formula::var(Var(i))));
        let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
        let rep = winslett_bounded(&t, &p);
        group.bench_with_input(BenchmarkId::new("winslett_f5", n), &rep, |b, rep| {
            b.iter(|| prune_disjuncts(rep).size())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_minimize,
    bench_horn,
    bench_model_check,
    bench_prune
);
criterion_main!(benches);
