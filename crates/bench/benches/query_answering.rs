//! The paper's motivating pipeline, timed end to end: compile-once
//! (offline) then answer many queries (online) against the compiled
//! representation, versus recomputing the semantics per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_instances::{random_formula, random_satisfiable};
use revkb_logic::Alphabet;
use revkb_revision::{revise_on, ModelBasedOp, RevisedKb};

fn bench_compiled_vs_semantic(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_answering");
    let mut rng = StdRng::seed_from_u64(5);
    let n = 10u32;
    let t = random_satisfiable(&mut rng, 4, n, 0);
    let p = random_satisfiable(&mut rng, 3, n, 0);
    let alpha = Alphabet::of_formulas([&t, &p]);
    // Queries must stay inside the revision alphabet — out-of-alphabet
    // queries are rejected (loudly) by the compiled representation.
    let queries: Vec<_> = std::iter::from_fn(|| Some(random_formula(&mut rng, 2, n, 0)))
        .filter(|q| q.vars().iter().all(|&v| alpha.contains(v)))
        .take(16)
        .collect();

    // Offline compilation (Dalal, Theorem 3.4), then SAT per query.
    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    group.bench_function(BenchmarkId::new("compiled_dalal", n), |b| {
        b.iter(|| queries.iter().filter(|q| kb.entails(q)).count())
    });

    // Per-query semantic recomputation (the strawman the paper's
    // two-step approach avoids).
    group.bench_function(BenchmarkId::new("semantic_per_query", n), |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|q| revise_on(ModelBasedOp::Dalal, &alpha, &t, &p).entails(q))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compiled_vs_semantic);
criterion_main!(benches);
