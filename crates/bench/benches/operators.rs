//! Timing of the semantic (oracle) revision operators and the
//! formula-based world enumeration — the per-operator cost behind
//! Table 1's rows and Figure 1's sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_instances::{random_satisfiable, NebelExample};
use revkb_logic::Alphabet;
use revkb_revision::{possible_worlds, revise_on, ModelBasedOp};

fn bench_model_based(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantic_revision");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [6usize, 8, 10] {
        let t = random_satisfiable(&mut rng, 3, n as u32, 0);
        let p = random_satisfiable(&mut rng, 3, n as u32, 0);
        let alpha = Alphabet::of_formulas([&t, &p]);
        for op in ModelBasedOp::ALL {
            group.bench_with_input(BenchmarkId::new(op.name(), n), &(&t, &p), |b, (t, p)| {
                b.iter(|| revise_on(op, &alpha, t, p))
            });
        }
    }
    group.finish();
}

fn bench_gfuv_worlds(c: &mut Criterion) {
    let mut group = c.benchmark_group("gfuv_possible_worlds");
    group.sample_size(10);
    for m in [3usize, 5, 7] {
        let ex = NebelExample::new(m);
        group.bench_with_input(BenchmarkId::new("nebel", m), &ex, |b, ex| {
            b.iter(|| possible_worlds(&ex.t, &ex.p, 1 << 12).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_based, bench_gfuv_worlds);
criterion_main!(benches);
