//! Timing of the compact-representation constructions: the offline
//! step of the paper's two-step query answering (Table 1/2 YES
//! cells).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revkb_logic::{Formula, Var};
use revkb_revision::compact::{
    dalal_compact_auto, dalal_iterated_auto, forbus_bounded, satoh_bounded, weber_compact_auto,
    weber_iterated_auto, winslett_bounded, winslett_iterated_auto,
};

fn chain_inputs(n: u32) -> (Formula, Formula) {
    let t = Formula::and_all((0..n).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    (t, p)
}

fn bench_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_constructions");
    group.sample_size(20);
    for n in [8u32, 16, 32] {
        let (t, p) = chain_inputs(n);
        group.bench_with_input(
            BenchmarkId::new("dalal_thm34", n),
            &(&t, &p),
            |b, (t, p)| b.iter(|| dalal_compact_auto(t, p).size()),
        );
        group.bench_with_input(
            BenchmarkId::new("weber_thm35", n),
            &(&t, &p),
            |b, (t, p)| b.iter(|| weber_compact_auto(t, p).unwrap().size()),
        );
        group.bench_with_input(
            BenchmarkId::new("winslett_f5", n),
            &(&t, &p),
            |b, (t, p)| b.iter(|| winslett_bounded(t, p).size()),
        );
        group.bench_with_input(BenchmarkId::new("forbus_f6", n), &(&t, &p), |b, (t, p)| {
            b.iter(|| forbus_bounded(t, p).size())
        });
        group.bench_with_input(BenchmarkId::new("satoh_f7", n), &(&t, &p), |b, (t, p)| {
            b.iter(|| satoh_bounded(t, p).size())
        });
    }
    group.finish();
}

fn bench_iterated(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterated_constructions");
    group.sample_size(10);
    let t = Formula::and_all((0..6u32).map(|i| Formula::var(Var(i))));
    for m in [2usize, 4] {
        let ps: Vec<Formula> = (0..m)
            .map(|i| Formula::var(Var((i % 6) as u32)).not())
            .collect();
        group.bench_with_input(BenchmarkId::new("dalal_phi_m", m), &ps, |b, ps| {
            b.iter(|| dalal_iterated_auto(&t, ps).size())
        });
        group.bench_with_input(BenchmarkId::new("weber_f10", m), &ps, |b, ps| {
            b.iter(|| weber_iterated_auto(&t, ps).unwrap().size())
        });
        group.bench_with_input(BenchmarkId::new("winslett_f16", m), &ps, |b, ps| {
            b.iter(|| winslett_iterated_auto(&t, ps).size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single, bench_iterated);
criterion_main!(benches);
