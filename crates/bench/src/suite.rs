//! The `revkb-bench` regression suite: a fixed, named set of
//! benchmarks spanning the whole pipeline — per-operator compile
//! times, sequential-vs-parallel batch query latency (with percentiles
//! from the `revkb-obs` histograms), BDD apply throughput, the Tseitin
//! transform, artifact-cache touch cost at large capacity,
//! cold-vs-warm server revises over a loopback TCP connection,
//! cold-boot recovery from a write-ahead-log data directory (with and
//! without artifact snapshots), replication — replica catch-up
//! from a seeded primary and query fan-out across read replicas — the
//! metrics plane (one Prometheus scrape, one sampler tick), and the
//! open-loop load generation against a spawned server process
//! (see [`crate::load`]: ten thousand concurrent connections,
//! scheduled-rate latency percentiles, pipelining, the HTTP gateway).
//!
//! Everything is deterministic modulo wall-clock noise: instance
//! generation is seeded (`REVKB_BENCH_SEED`), each benchmark runs
//! `REVKB_BENCH_WARMUP` discarded warmup rounds followed by
//! `REVKB_BENCH_TRIALS` measured trials, and the reported figure is
//! the **median** trial. The emitted report (`BENCH_PR10.json`) is
//! schema-versioned and can be replayed as a `--baseline` to detect
//! regressions: a benchmark regresses only when it is both relatively
//! slower than its per-benchmark tolerance *and* absolutely slower by
//! more than [`MIN_DELTA_MICROS`] (so micro-benchmarks near the timer
//! floor cannot flap CI).

use crate::json::Value;
use crate::RunMeta;
use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_instances::{random_formula, random_kcnf, random_satisfiable};
use revkb_logic::{tseitin_auto, Formula};
use revkb_sat::{PoolConfig, SessionPool};
use revkb_server::{Artifact, ArtifactCache, Json, Server, ServerConfig, SyncMode};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

/// Environment variable seeding the deterministic instance generation.
pub const SEED_ENV: &str = "REVKB_BENCH_SEED";
/// Environment variable setting the measured trial count.
pub const TRIALS_ENV: &str = "REVKB_BENCH_TRIALS";
/// Environment variable setting the discarded warmup round count.
pub const WARMUP_ENV: &str = "REVKB_BENCH_WARMUP";

/// Schema version of the `BENCH_*.json` report.
pub const BENCH_SCHEMA_VERSION: u32 = 1;
/// Default per-benchmark regression tolerance, percent.
pub const DEFAULT_TOLERANCE_PCT: f64 = 15.0;
/// Absolute regression floor in microseconds: a benchmark is only a
/// regression when it is slower by more than this, whatever the
/// relative delta says. Keeps sub-millisecond benches from flapping.
pub const MIN_DELTA_MICROS: f64 = 500.0;

/// How the suite runs: seed, trial count, warmup rounds.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Seed for instance generation (`REVKB_BENCH_SEED`, default 42).
    pub seed: u64,
    /// Measured trials per benchmark (`REVKB_BENCH_TRIALS`, default 5).
    pub trials: usize,
    /// Discarded warmup rounds (`REVKB_BENCH_WARMUP`, default 1).
    pub warmup: usize,
    /// Global tolerance override; `None` keeps the per-benchmark
    /// defaults.
    pub tolerance_pct: Option<f64>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 42,
            trials: 5,
            warmup: 1,
            tolerance_pct: None,
        }
    }
}

impl SuiteConfig {
    /// Defaults overridden by the `REVKB_BENCH_*` environment.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(seed) = env_u64(SEED_ENV) {
            cfg.seed = seed;
        }
        if let Some(trials) = env_u64(TRIALS_ENV) {
            cfg.trials = (trials as usize).max(1);
        }
        if let Some(warmup) = env_u64(WARMUP_ENV) {
            cfg.warmup = warmup as usize;
        }
        cfg
    }

    pub(crate) fn tolerance_for(&self, name: &str) -> f64 {
        if let Some(t) = self.tolerance_pct {
            return t;
        }
        // Wall-clock-noisy benches (thread pools, TCP round-trips,
        // replication tail-polling) get wider bands; pure-compute
        // compile benches keep the default.
        if name.starts_with("query.") || name.starts_with("server.") || name.starts_with("repl.") {
            50.0
        } else {
            DEFAULT_TOLERANCE_PCT
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark name (`compile.dalal`, `server.revise.warm`…).
    pub name: String,
    /// Unit of `median` and `trials` (always microseconds today).
    pub unit: &'static str,
    /// Median of the measured trials.
    pub median: f64,
    /// Every measured trial, in order.
    pub trials: Vec<f64>,
    /// Relative regression tolerance for this benchmark, percent.
    pub tolerance_pct: f64,
    /// Benchmark-specific side measurements (percentiles, sizes…).
    pub extra: Vec<(&'static str, Value)>,
}

impl BenchResult {
    fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("name", Value::string(&self.name)),
            ("unit", Value::string(self.unit)),
            ("median", Value::Number(self.median)),
            (
                "trials",
                Value::Array(self.trials.iter().map(|&t| Value::Number(t)).collect()),
            ),
            ("tolerance_pct", Value::Number(self.tolerance_pct)),
        ];
        if !self.extra.is_empty() {
            pairs.push((
                "extra",
                Value::Object(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        Value::object(pairs)
    }
}

fn median_of(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite trial times"));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Warmup + timed trials of `work`; returns `(median, trials)`.
fn timed_trials(cfg: &SuiteConfig, mut work: impl FnMut()) -> (f64, Vec<f64>) {
    for _ in 0..cfg.warmup {
        work();
    }
    let mut trials = Vec::with_capacity(cfg.trials);
    for _ in 0..cfg.trials {
        let start = Instant::now();
        work();
        trials.push(start.elapsed().as_micros() as f64);
    }
    (median_of(&trials), trials)
}

fn result(cfg: &SuiteConfig, name: String, median: f64, trials: Vec<f64>) -> BenchResult {
    let tolerance_pct = cfg.tolerance_for(&name);
    BenchResult {
        name,
        unit: "micros",
        median,
        trials,
        tolerance_pct,
        extra: Vec::new(),
    }
}

/// The eight operator tags the suite compiles, in wire order.
pub const OPERATORS: [&str; 8] = [
    "winslett", "borgida", "forbus", "satoh", "dalal", "weber", "gfuv", "widtio",
];

/// `compile.<op>` — one full compile of a fixed seeded scenario per
/// trial, for each of the eight operators.
fn compile_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    use revkb_revision::{GfuvEngine, ModelBasedOp, RevisedKb, Theory, WidtioEngine};
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let t = random_satisfiable(&mut rng, 4, 6, 0);
    let p = random_satisfiable(&mut rng, 3, 4, 0);
    OPERATORS
        .iter()
        .map(|op| {
            let mut compiled_size: Option<usize> = None;
            let (median, trials) = timed_trials(cfg, || match ModelBasedOp::from_name(op) {
                Some(m) => {
                    let kb = RevisedKb::compile(m, &t, &p).expect("suite scenario compiles");
                    compiled_size = Some(kb.size());
                }
                None if *op == "gfuv" => {
                    let theory = Theory::new([t.clone()]);
                    let kb = GfuvEngine::compile(theory, p.clone(), 1 << 16)
                        .expect("suite worlds fit the budget");
                    drop(kb);
                }
                None => {
                    let theory = Theory::new([t.clone()]);
                    let kb = WidtioEngine::compile(&theory, &p);
                    drop(kb);
                }
            });
            let mut r = result(cfg, format!("compile.{op}"), median, trials);
            if let Some(size) = compiled_size {
                r.extra.push(("compiled_size", Value::Number(size as f64)));
            }
            r
        })
        .collect()
}

/// `query.sequential` / `query.parallel` — a 64-query batch through
/// one sharded [`SessionPool`], each way, with per-query latency
/// percentiles read from the `sat.session.query_micros` histogram
/// under a temporarily-enabled `Summary` trace mode.
fn query_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0001);
    let base = random_satisfiable(&mut rng, 4, 10, 0);
    // Queries must stay inside the base alphabet — a query letter the
    // base never mentions would collide with the session's internal
    // Tseitin variables (and real clients are rejected for it).
    let alpha = revkb_logic::Alphabet::of_formulas([&base]);
    let queries: Vec<Formula> = std::iter::from_fn(|| Some(random_formula(&mut rng, 3, 10, 0)))
        .filter(|q| q.vars().iter().all(|&v| alpha.contains(v)))
        .take(64)
        .collect();
    let mut pool = SessionPool::with_config(
        &base,
        PoolConfig {
            threads: revkb_sat::default_threads(),
            sequential_threshold: 0,
        },
    );
    let (seq_median, seq_trials) = timed_trials(cfg, || {
        let _ = pool.entails_batch(&queries);
    });
    let (par_median, par_trials) = timed_trials(cfg, || {
        let _ = pool.par_entails_batch(&queries);
    });

    // Percentiles: run one instrumented pass of each kind under the
    // Summary mode, then restore whatever mode the process had. The
    // suite owns the process-wide registry here, so the reset is safe.
    let percentiles = |parallel: bool, pool: &mut SessionPool| -> Vec<(&'static str, Value)> {
        let prev = revkb_obs::mode();
        revkb_obs::set_mode(revkb_obs::TraceMode::Summary);
        revkb_obs::reset();
        if parallel {
            let _ = pool.par_entails_batch(&queries);
        } else {
            let _ = pool.entails_batch(&queries);
        }
        let snap = revkb_obs::snapshot();
        let extra = match snap.histogram("sat.session.query_micros") {
            Some(h) => vec![
                ("query_count", Value::Number(h.count as f64)),
                ("p50_micros", pct(h.percentile(0.50))),
                ("p95_micros", pct(h.percentile(0.95))),
                ("p99_micros", pct(h.percentile(0.99))),
            ],
            None => Vec::new(),
        };
        revkb_obs::reset();
        revkb_obs::set_mode(prev);
        extra
    };
    let seq_extra = percentiles(false, &mut pool);
    let par_extra = percentiles(true, &mut pool);

    let mut seq = result(cfg, "query.sequential".into(), seq_median, seq_trials);
    seq.extra = seq_extra;
    let mut par = result(cfg, "query.parallel".into(), par_median, par_trials);
    par.extra
        .push(("threads", Value::Number(pool.threads() as f64)));
    par.extra.extend(par_extra);
    vec![seq, par]
}

fn pct(v: Option<u64>) -> Value {
    v.map_or(Value::Null, |v| Value::Number(v as f64))
}

/// `bdd.apply` — build the BDD of a seeded random 3-CNF from scratch
/// each trial; the apply/unique-table machinery dominates.
fn bdd_bench(cfg: &SuiteConfig) -> BenchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0002);
    let f = random_kcnf(&mut rng, 12, 30, 3);
    let mut nodes = 0usize;
    let mut allocated = 0usize;
    let (median, trials) = timed_trials(cfg, || {
        let mut manager = revkb_bdd::BddManager::new();
        let node = manager.from_formula(&f);
        nodes = manager.size(node);
        allocated = manager.allocated();
    });
    let mut r = result(cfg, "bdd.apply".into(), median, trials);
    r.extra.push(("bdd_nodes", Value::Number(nodes as f64)));
    r.extra
        .push(("allocated_nodes", Value::Number(allocated as f64)));
    r
}

/// `logic.tseitin` — clausify a deep seeded formula each trial.
fn tseitin_bench(cfg: &SuiteConfig) -> BenchResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0003);
    let f = random_formula(&mut rng, 12, 16, 0);
    let mut clauses = 0usize;
    let (median, trials) = timed_trials(cfg, || {
        clauses = tseitin_auto(&f).len();
    });
    let mut r = result(cfg, "logic.tseitin".into(), median, trials);
    r.extra.push(("clauses", Value::Number(clauses as f64)));
    r.extra
        .push(("formula_size", Value::Number(f.size() as f64)));
    r
}

/// One loopback client round-trip: write the line, read one response
/// line, assert `ok:true`.
fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> (Json, u64) {
    // One write per request: a separate write of the newline would
    // interact with Nagle's algorithm and delayed ACKs, measuring the
    // kernel's coalescing timer instead of the server.
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    let start = Instant::now();
    writer.write_all(framed.as_bytes()).expect("loopback write");
    let mut response = String::new();
    reader.read_line(&mut response).expect("loopback read");
    let micros = start.elapsed().as_micros() as u64;
    let json = Json::parse(response.trim()).expect("server response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "server request failed: {line} -> {response}"
    );
    (json, micros)
}

/// Distinct revision formulas of near-identical size: the sign
/// pattern over four fresh letters tracks the bits of `i`, so every
/// variant is a different artifact-cache key whose parse tree differs
/// only in negation nodes.
fn revision_variant(i: usize) -> String {
    let sign = |bit: usize| if (i >> bit) & 1 == 0 { "" } else { "!" };
    format!(
        "!b | !c | ({}e & {}f & {}g & {}h)",
        sign(0),
        sign(1),
        sign(2),
        sign(3)
    )
}

/// `server.revise.cold` / `server.revise.warm` — a real `revkb-server`
/// on a loopback TCP socket. Cold trials revise with a fresh formula
/// each time (guaranteed artifact-cache miss); warm trials replay one
/// already-compiled revision on fresh KB names (guaranteed hit). The
/// cold/warm ratio is the artifact cache's value as seen by a client.
fn server_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    const THEORY: &str = "a & b; b -> c; c | d";
    let server = Server::new(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        })
    };
    let mut writer = TcpStream::connect(addr).expect("connect loopback");
    writer.set_nodelay(true).expect("set TCP_NODELAY");
    let mut reader = BufReader::new(writer.try_clone().expect("clone stream"));

    assert!(
        cfg.warmup + cfg.trials <= 16,
        "only 16 distinct revision variants"
    );
    let mut kb_seq = 0usize;
    let mut cold_one = |variant: usize, out: Option<&mut Vec<f64>>| {
        kb_seq += 1;
        let kb = format!("cold-{kb_seq}");
        let load = format!(r#"{{"cmd":"load","kb":"{kb}","t":"{THEORY}"}}"#);
        roundtrip(&mut writer, &mut reader, &load);
        let revise = format!(
            r#"{{"cmd":"revise","kb":"{kb}","op":"dalal","p":"{}"}}"#,
            revision_variant(variant)
        );
        let (resp, micros) = roundtrip(&mut writer, &mut reader, &revise);
        let cache = resp
            .get("result")
            .and_then(|r| r.get("cache"))
            .and_then(Json::as_str);
        assert_eq!(cache, Some("miss"), "cold revise must miss the cache");
        if let Some(out) = out {
            out.push(micros as f64);
        }
    };
    let mut cold_trials = Vec::with_capacity(cfg.trials);
    for i in 0..cfg.warmup {
        cold_one(i, None);
    }
    for i in 0..cfg.trials {
        cold_one(cfg.warmup + i, Some(&mut cold_trials));
    }

    // Warm: variant 0 was compiled during warmup (or by the first cold
    // trial when warmup is 0), so replays on fresh KB names must hit.
    let warm_variant = 0usize;
    let mut warm_trials = Vec::with_capacity(cfg.trials);
    for i in 0..cfg.warmup + cfg.trials {
        let kb = format!("warm-{i}");
        let load = format!(r#"{{"cmd":"load","kb":"{kb}","t":"{THEORY}"}}"#);
        roundtrip(&mut writer, &mut reader, &load);
        let revise = format!(
            r#"{{"cmd":"revise","kb":"{kb}","op":"dalal","p":"{}"}}"#,
            revision_variant(warm_variant)
        );
        let (resp, micros) = roundtrip(&mut writer, &mut reader, &revise);
        let cache = resp
            .get("result")
            .and_then(|r| r.get("cache"))
            .and_then(Json::as_str);
        assert_eq!(cache, Some("hit"), "warm revise must hit the cache");
        if i >= cfg.warmup {
            warm_trials.push(micros as f64);
        }
    }

    let (_, _) = roundtrip(&mut writer, &mut reader, r#"{"cmd":"shutdown"}"#);
    let _ = acceptor.join();

    let cold_median = median_of(&cold_trials);
    let warm_median = median_of(&warm_trials);
    let mut cold = result(cfg, "server.revise.cold".into(), cold_median, cold_trials);
    cold.extra.push(("transport", Value::string("tcp")));
    let mut warm = result(cfg, "server.revise.warm".into(), warm_median, warm_trials);
    warm.extra.push(("transport", Value::string("tcp")));
    if warm_median > 0.0 {
        warm.extra
            .push(("cold_over_warm", Value::Number(cold_median / warm_median)));
    }
    vec![cold, warm]
}

/// `cache.touch` — warm-hit cost of the artifact cache at a large
/// capacity: 10 000 strided `get`s against 4 096 resident entries.
/// Guards the O(1)-amortized recency bookkeeping (the previous
/// `VecDeque::position` scan made this workload quadratic).
fn cache_touch_bench(cfg: &SuiteConfig) -> BenchResult {
    use revkb_logic::Var;
    const ENTRIES: usize = 4096;
    const TOUCHES: usize = 10_000;
    let mut cache = ArtifactCache::new(ENTRIES);
    for i in 0..ENTRIES {
        cache.insert(
            format!("key-{i}"),
            Artifact {
                formula: Formula::var(Var(i as u32)),
                base: vec![Var(i as u32)],
                logical: true,
            },
        );
    }
    // A prime stride visits every entry in a shuffled-looking order.
    let keys: Vec<String> = (0..ENTRIES)
        .map(|i| format!("key-{}", (i * 7919) % ENTRIES))
        .collect();
    let (median, trials) = timed_trials(cfg, || {
        for t in 0..TOUCHES {
            assert!(cache.get(&keys[t % ENTRIES]).is_some());
        }
    });
    let mut r = result(cfg, "cache.touch".into(), median, trials);
    r.extra.push(("entries", Value::Number(ENTRIES as f64)));
    r.extra.push(("touches", Value::Number(TOUCHES as f64)));
    r
}

fn copy_data_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("create bench run dir");
    for entry in std::fs::read_dir(from).expect("read bench seed dir") {
        let entry = entry.expect("seed dir entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy wal file");
    }
}

/// `server.boot.snapshot` / `server.boot.replay` — cold-boot recovery:
/// the time from `Server::open` on a populated data directory to the
/// first warm answer (a fresh KB revised with an already-compiled
/// revision, asserted to be a cache *hit*). The `snapshot` variant
/// boots from an artifact snapshot (replay hits the pre-warmed cache);
/// the `replay` variant has no snapshot and recompiles during replay.
/// Their ratio is what snapshots buy.
fn wal_boot_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    const THEORY: &str = "a & b; b -> c; c | d";
    let base = std::env::temp_dir().join(format!("revkb-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let durable = |dir: &std::path::Path, snapshot_every: usize| {
        ServerConfig::default()
            .with_data_dir(Some(dir.to_path_buf()))
            .with_wal_sync(SyncMode::Off)
            .with_snapshot_every(snapshot_every)
    };
    let call = |server: &Server, line: &str| -> Json {
        let response = server.handle_line(line).expect("non-blank line");
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "bench request failed: {line} -> {response}"
        );
        json
    };
    let mut results = Vec::new();
    for (name, snapshot_every) in [("server.boot.snapshot", 1usize), ("server.boot.replay", 0)] {
        // Seed one data directory per variant: eight KBs, each loaded
        // and revised once (eight distinct compiled artifacts).
        let seed_dir = base.join(format!("seed-{snapshot_every}"));
        {
            let server = Server::open(durable(&seed_dir, snapshot_every)).expect("seed data dir");
            for i in 0..8usize {
                call(
                    &server,
                    &format!(r#"{{"cmd":"load","kb":"kb{i}","t":"{THEORY}"}}"#),
                );
                call(
                    &server,
                    &format!(
                        r#"{{"cmd":"revise","kb":"kb{i}","op":"dalal","p":"{}"}}"#,
                        revision_variant(i)
                    ),
                );
            }
        }
        let mut trials = Vec::with_capacity(cfg.trials);
        let mut replayed = 0u64;
        for t in 0..cfg.warmup + cfg.trials {
            // Per-trial copy: recovery truncation and appends must not
            // let one trial contaminate the next.
            let run_dir = base.join(format!("run-{snapshot_every}-{t}"));
            copy_data_dir(&seed_dir, &run_dir);
            let start = Instant::now();
            let server = Server::open(durable(&run_dir, snapshot_every)).expect("boot bench dir");
            call(
                &server,
                &format!(r#"{{"cmd":"load","kb":"fresh","t":"{THEORY}"}}"#),
            );
            let resp = call(
                &server,
                &format!(
                    r#"{{"cmd":"revise","kb":"fresh","op":"dalal","p":"{}"}}"#,
                    revision_variant(0)
                ),
            );
            let micros = start.elapsed().as_micros() as f64;
            // The whole point of recovery: the first warm answer after
            // a cold boot comes from the cache, never a recompile.
            assert_eq!(
                resp.get("result")
                    .and_then(|r| r.get("cache"))
                    .and_then(Json::as_str),
                Some("hit"),
                "{name}: first post-boot revise must hit the cache"
            );
            replayed = server
                .recovery_report()
                .expect("durable server has a report")
                .replayed;
            drop(server);
            let _ = std::fs::remove_dir_all(&run_dir);
            if t >= cfg.warmup {
                trials.push(micros);
            }
        }
        let median = median_of(&trials);
        let mut r = result(cfg, name.into(), median, trials);
        r.extra
            .push(("replayed_records", Value::Number(replayed as f64)));
        r.extra
            .push(("snapshot_every", Value::Number(snapshot_every as f64)));
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&base);
    results
}

/// `repl.catchup` / `repl.read_fanout` — WAL replication. `catchup`
/// times a fresh replica from connect to fully drained against a
/// seeded primary (snapshot bootstrap + log suffix). `read_fanout`
/// times three concurrent clients reading through a
/// primary-plus-two-replicas fan-out, with the same load against the
/// primary alone recorded as `single_node_micros` — the ratio is the
/// read scale-out replication buys on this machine.
fn repl_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    const THEORY: &str = "a & b; b -> c; c | d";
    const KBS: usize = 12;
    let base = std::env::temp_dir().join(format!("revkb-bench-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary = Server::open(
        ServerConfig::default()
            .with_data_dir(Some(base.clone()))
            .with_wal_sync(SyncMode::Off)
            .with_snapshot_every(1),
    )
    .expect("seed replication primary");
    let call = |server: &Server, line: &str| {
        let response = server.handle_line(line).expect("non-blank line");
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "bench request failed: {line} -> {response}"
        );
    };
    for i in 0..KBS {
        call(
            &primary,
            &format!(r#"{{"cmd":"load","kb":"kb{i}","t":"{THEORY}"}}"#),
        );
        call(
            &primary,
            &format!(
                r#"{{"cmd":"revise","kb":"kb{i}","op":"dalal","p":"{}"}}"#,
                revision_variant(i % 16)
            ),
        );
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind primary");
    let addr = listener.local_addr().expect("primary addr");
    let acceptor = {
        let server = primary.clone();
        std::thread::spawn(move || {
            let _ = server.serve_tcp(listener);
        })
    };
    let committed = primary.wal_committed_bytes().expect("durable primary");

    let wait_caught_up = |replica: &Server| {
        while replica.replication_status().expect("replica status").offset < committed {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    };
    // Shutdown is cleanup, not catch-up: joining the replication
    // thread waits out its socket read timeout, so it happens outside
    // the timed region.
    let mut records = 0u64;
    let mut spent = Vec::new();
    let (median, trials) = timed_trials(cfg, || {
        let replica = Server::new(ServerConfig::default().with_replica_of(Some(addr.to_string())));
        let thread = replica.start_replication().expect("replica replicates");
        wait_caught_up(&replica);
        records = replica
            .replication_status()
            .expect("replica status")
            .records_applied;
        spent.push((replica, thread));
    });
    for (replica, thread) in spent.drain(..) {
        replica.begin_shutdown();
        thread.join().expect("replication thread joins");
    }
    let mut catchup = result(cfg, "repl.catchup".into(), median, trials);
    catchup
        .extra
        .push(("log_bytes", Value::Number(committed as f64)));
    catchup
        .extra
        .push(("records_applied", Value::Number(records as f64)));

    // Two standing replicas serving TCP for the fan-out measurement.
    let mut replicas = Vec::new();
    for _ in 0..2 {
        let replica = Server::new(ServerConfig::default().with_replica_of(Some(addr.to_string())));
        let repl_thread = replica.start_replication().expect("replica replicates");
        wait_caught_up(&replica);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind replica");
        let raddr = listener.local_addr().expect("replica addr");
        let serve_thread = {
            let server = replica.clone();
            std::thread::spawn(move || {
                let _ = server.serve_tcp(listener);
            })
        };
        replicas.push((replica, raddr, repl_thread, serve_thread));
    }
    let endpoints: Vec<std::net::SocketAddr> = std::iter::once(addr)
        .chain(replicas.iter().map(|(_, raddr, _, _)| *raddr))
        .collect();
    const CLIENTS: usize = 3;
    const QUERIES_PER_CLIENT: usize = 30;
    let run_round = |targets: &[std::net::SocketAddr]| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let target = targets[c % targets.len()];
                std::thread::spawn(move || {
                    let mut writer = TcpStream::connect(target).expect("connect endpoint");
                    writer.set_nodelay(true).expect("set TCP_NODELAY");
                    let mut reader = BufReader::new(writer.try_clone().expect("clone stream"));
                    for q in 0..QUERIES_PER_CLIENT {
                        let kb = (c * QUERIES_PER_CLIENT + q) % KBS;
                        let line = format!(r#"{{"cmd":"query","kb":"kb{kb}","q":"a | e"}}"#);
                        let _ = roundtrip(&mut writer, &mut reader, &line);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("client thread");
        }
    };
    let (fanout_median, fanout_trials) = timed_trials(cfg, || run_round(&endpoints));
    let (single_median, _) = timed_trials(cfg, || run_round(&endpoints[..1]));
    let mut fanout = result(cfg, "repl.read_fanout".into(), fanout_median, fanout_trials);
    fanout
        .extra
        .push(("replicas", Value::Number(replicas.len() as f64)));
    fanout.extra.push((
        "queries",
        Value::Number((CLIENTS * QUERIES_PER_CLIENT) as f64),
    ));
    fanout
        .extra
        .push(("single_node_micros", Value::Number(single_median)));
    if fanout_median > 0.0 {
        fanout
            .extra
            .push(("speedup", Value::Number(single_median / fanout_median)));
    }

    for (replica, _, repl_thread, serve_thread) in replicas {
        replica.begin_shutdown();
        repl_thread.join().expect("replication thread joins");
        serve_thread.join().expect("replica serve thread joins");
    }
    primary.begin_shutdown();
    let _ = acceptor.join();
    let _ = std::fs::remove_dir_all(&base);
    vec![catchup, fanout]
}

/// `obs.scrape` / `obs.sample_tick` — the metrics plane. `scrape`
/// times one full Prometheus text exposition (`Server::metrics_text`)
/// on a server warmed with a multi-KB workload — the cost an external
/// scraper imposes per poll. `sample_tick` times one
/// [`revkb_obs::timeseries::SeriesStore::tick`] folding a
/// server-sized observation set into the ring buffers — the cost the
/// background sampler imposes per interval.
fn obs_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    use revkb_obs::timeseries::{Observation, SeriesStore, DEFAULT_SERIES_CAPACITY};

    const THEORY: &str = "a & b; b -> c; c | d";
    let server = Server::new(ServerConfig::default());
    let call = |line: &str| {
        let response = server.handle_line(line).expect("non-blank line");
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "bench request failed: {line} -> {response}"
        );
    };
    for i in 0..8 {
        call(&format!(r#"{{"cmd":"load","kb":"kb{i}","t":"{THEORY}"}}"#));
        call(&format!(
            r#"{{"cmd":"revise","kb":"kb{i}","op":"dalal","p":"{}"}}"#,
            revision_variant(i % 16)
        ));
        call(&format!(r#"{{"cmd":"query","kb":"kb{i}","q":"a | e"}}"#));
    }
    let mut page_bytes = 0u64;
    let (median, trials) = timed_trials(cfg, || {
        // 50 scrapes per trial lift the figure off the timer floor.
        for _ in 0..50 {
            page_bytes = std::hint::black_box(server.metrics_text()).len() as u64;
        }
    });
    let mut scrape = result(cfg, "obs.scrape".into(), median, trials);
    scrape.extra.push(("scrapes", Value::Number(50.0)));
    scrape
        .extra
        .push(("page_bytes", Value::Number(page_bytes as f64)));

    let observations: Vec<Observation> = (0..32)
        .map(|i| Observation::counter(format!("bench.counter.{i}"), 0))
        .chain((0..8).map(|i| Observation::gauge(format!("bench.gauge.{i}"), 0)))
        .collect();
    let mut store = SeriesStore::new(DEFAULT_SERIES_CAPACITY);
    let mut at = 0u64;
    store.tick(at, &observations); // ring creation off the clock
    let (tick_median, tick_trials) = timed_trials(cfg, || {
        // 1000 ticks per trial ≈ 16 minutes of sampling at the
        // default interval, enough to wrap nothing and time plenty.
        for _ in 0..1000 {
            at += 1;
            store.tick(at, std::hint::black_box(&observations));
        }
    });
    let mut tick = result(cfg, "obs.sample_tick".into(), tick_median, tick_trials);
    tick.extra.push(("ticks", Value::Number(1000.0)));
    tick.extra
        .push(("series", Value::Number(observations.len() as f64)));

    // `obs.log_emit` — the per-record cost of the structured sinks: a
    // representative server log record rendered to its NDJSON line
    // (the marginal work each recorded line adds over the plain
    // stderr write the server always did).
    let record = revkb_obs::LogRecord {
        ts_millis: 1_700_000_000_000,
        level: revkb_obs::Level::Warn,
        target: "wal",
        trace: Some(0x4fd0_aecc_c9f1_bb2a),
        msg: "revkb-server: wal replay skipped a record: checksum mismatch at offset 4096"
            .to_string(),
    };
    let (log_median, log_trials) = timed_trials(cfg, || {
        for _ in 0..1000 {
            std::hint::black_box(record.render_json());
        }
    });
    let mut log_emit = result(cfg, "obs.log_emit".into(), log_median, log_trials);
    log_emit.extra.push(("records", Value::Number(1000.0)));
    log_emit.extra.push((
        "line_bytes",
        Value::Number(record.render_json().len() as f64),
    ));

    // `obs.flight_record` — the always-on cost of one attributed span
    // through the flight recorder with `REVKB_TRACE` off: the price
    // every request pays so `/debug/trace.json` works without a
    // restart.
    let prev_mode = revkb_obs::mode();
    let prev_flight = revkb_obs::flight_enabled();
    revkb_obs::set_mode(revkb_obs::TraceMode::Off);
    revkb_obs::set_flight_enabled(true);
    let mut trace_id = 1u64;
    let (flight_median, flight_trials) = timed_trials(cfg, || {
        for _ in 0..1000 {
            trace_id = trace_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let _span = revkb_obs::span_with(
                "bench.flight.span",
                &[("req", 7), (revkb_obs::TRACE_ATTR, trace_id)],
            );
        }
    });
    revkb_obs::set_flight_enabled(prev_flight);
    revkb_obs::set_mode(prev_mode);
    revkb_obs::flight_reset();
    let mut flight = result(
        cfg,
        "obs.flight_record".into(),
        flight_median,
        flight_trials,
    );
    flight.extra.push(("spans", Value::Number(1000.0)));
    flight.extra.push((
        "ring_capacity",
        Value::Number(revkb_obs::FLIGHT_CAPACITY as f64),
    ));

    vec![scrape, tick, log_emit, flight]
}

/// Run the whole fixed suite in order.
pub fn run_suite(cfg: &SuiteConfig) -> Vec<BenchResult> {
    let mut results = compile_benches(cfg);
    results.extend(query_benches(cfg));
    results.push(bdd_bench(cfg));
    results.push(tseitin_bench(cfg));
    results.push(cache_touch_bench(cfg));
    results.extend(server_benches(cfg));
    results.extend(wal_boot_benches(cfg));
    results.extend(repl_benches(cfg));
    results.extend(obs_benches(cfg));
    results.extend(crate::load::load_benches(cfg));
    results
}

/// Render the schema-versioned `BENCH_*.json` report.
pub fn report_json(cfg: &SuiteConfig, meta: &RunMeta, results: &[BenchResult]) -> String {
    Value::object([
        ("bench", Value::string("revkb-bench")),
        ("schema_version", Value::Number(BENCH_SCHEMA_VERSION as f64)),
        ("run_meta", run_meta_json(cfg, meta)),
        (
            "benchmarks",
            Value::array(results.iter().map(BenchResult::to_json)),
        ),
    ])
    .pretty()
}

fn run_meta_json(cfg: &SuiteConfig, meta: &RunMeta) -> Value {
    Value::object([
        ("threads", Value::Number(meta.threads as f64)),
        ("trace_mode", Value::string(meta.trace_mode)),
        (
            "git_describe",
            meta.git_describe
                .as_deref()
                .map_or(Value::Null, Value::string),
        ),
        (
            "cpu_count",
            Value::Number(std::thread::available_parallelism().map_or(0, |n| n.get()) as f64),
        ),
        ("seed", Value::Number(cfg.seed as f64)),
        ("trials", Value::Number(cfg.trials as f64)),
        ("warmup", Value::Number(cfg.warmup as f64)),
    ])
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, microseconds.
    pub baseline: f64,
    /// Current median, microseconds.
    pub current: f64,
    /// Relative change, percent (positive = slower).
    pub delta_pct: f64,
    /// Tolerance applied, percent.
    pub tolerance_pct: f64,
    /// Regression verdict: relatively beyond tolerance *and*
    /// absolutely beyond [`MIN_DELTA_MICROS`].
    pub regressed: bool,
}

/// Compare current results against a baseline `BENCH_*.json`.
///
/// Benchmarks present only on one side are skipped (a new benchmark is
/// not a regression; a removed one is a review question, not a CI
/// failure). Errors only on unparseable or wrong-schema baselines.
pub fn compare_against_baseline(
    results: &[BenchResult],
    baseline_json: &str,
) -> Result<Vec<Comparison>, String> {
    let baseline =
        Json::parse(baseline_json).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let version = baseline
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("baseline has no schema_version")?;
    if version != BENCH_SCHEMA_VERSION as u64 {
        return Err(format!(
            "baseline schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    let benchmarks = baseline
        .get("benchmarks")
        .and_then(Json::as_array)
        .ok_or("baseline has no benchmarks array")?;
    let mut comparisons = Vec::new();
    for r in results {
        let Some(base) = benchmarks
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(r.name.as_str()))
        else {
            continue;
        };
        let Some(base_median) = base.get("median").and_then(Json::as_f64) else {
            continue;
        };
        let delta = r.median - base_median;
        let delta_pct = if base_median > 0.0 {
            delta / base_median * 100.0
        } else {
            0.0
        };
        let regressed = delta_pct > r.tolerance_pct && delta > MIN_DELTA_MICROS;
        comparisons.push(Comparison {
            name: r.name.clone(),
            baseline: base_median,
            current: r.median,
            delta_pct,
            tolerance_pct: r.tolerance_pct,
            regressed,
        });
    }
    Ok(comparisons)
}

/// The folded-in `server_bench` workload: per-operator cold/warm
/// revise through an in-process server, reported with the same
/// schema-versioned envelope. Returns the rendered
/// `server_bench_report.json` contents and a printable summary.
pub fn server_ops_report(cfg: &SuiteConfig, meta: &RunMeta) -> (String, String) {
    const THEORY: &str = "a & b; b -> c; c | d";
    const REVISION: &str = "!b | !c";
    const QUERIES: [&str; 4] = ["a", "c | d", "!(b & c)", "a & (c | d)"];
    let server = Server::new(ServerConfig::default());
    let call = |line: &str| -> (Json, u64) {
        let start = Instant::now();
        let response = server.handle_line(line).expect("non-blank line");
        let micros = start.elapsed().as_micros() as u64;
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {line} -> {response}"
        );
        (json, micros)
    };
    let mut rows = Vec::new();
    let mut summary =
        String::from("== server ops: artifact cache & request latency (in-process) ==\n");
    summary.push_str(&format!(
        "{:<10} {:>16} {:>16} {:>10} {:>16} {:>14}\n",
        "operator", "cold_revise_us", "warm_revise_us", "cache", "query_batch_us", "compiled_size"
    ));
    for op in OPERATORS {
        let kb = format!("bench-{op}");
        let load = format!(r#"{{"cmd":"load","kb":"{kb}","t":"{THEORY}"}}"#);
        let revise = format!(r#"{{"cmd":"revise","kb":"{kb}","op":"{op}","p":"{REVISION}"}}"#);
        let qs: Vec<String> = QUERIES.iter().map(|q| format!("\"{q}\"")).collect();
        let query = format!(
            r#"{{"cmd":"query_batch","kb":"{kb}","qs":[{}]}}"#,
            qs.join(",")
        );
        call(&load);
        let (cold_resp, cold_micros) = call(&revise);
        let (_, query_micros) = call(&query);
        let compiled_size = cold_resp
            .get("result")
            .and_then(|r| r.get("compiled_size"))
            .and_then(Json::as_u64);
        call(&format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#));
        call(&load);
        let (warm_resp, warm_micros) = call(&revise);
        let warm_cache = warm_resp
            .get("result")
            .and_then(|r| r.get("cache"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        call(&format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#));
        summary.push_str(&format!(
            "{:<10} {:>16} {:>16} {:>10} {:>16} {:>14}\n",
            op,
            cold_micros,
            warm_micros,
            warm_cache,
            query_micros,
            compiled_size.map_or_else(|| "-".to_string(), |s| s.to_string()),
        ));
        rows.push(Value::object([
            ("op", Value::string(op)),
            ("cold_revise_micros", Value::Number(cold_micros as f64)),
            ("warm_revise_micros", Value::Number(warm_micros as f64)),
            ("warm_cache", Value::string(&warm_cache)),
            ("query_batch_micros", Value::Number(query_micros as f64)),
            (
                "compiled_size",
                compiled_size.map_or(Value::Null, |s| Value::Number(s as f64)),
            ),
        ]));
    }
    let (stats, _) = call(r#"{"cmd":"stats"}"#);
    let stats_result = stats.get("result").expect("stats result");
    let cache = stats_result.get("cache").expect("stats cache block");
    let cache_field = |key: &str| cache.get(key).and_then(Json::as_u64).unwrap_or(0);
    let report = Value::object([
        ("bench", Value::string("server_bench")),
        ("schema_version", Value::Number(BENCH_SCHEMA_VERSION as f64)),
        ("run_meta", run_meta_json(cfg, meta)),
        ("operators", Value::Array(rows)),
        (
            "cache",
            Value::object([
                ("hits", Value::Number(cache_field("hits") as f64)),
                ("misses", Value::Number(cache_field("misses") as f64)),
                ("evictions", Value::Number(cache_field("evictions") as f64)),
            ]),
        ),
        (
            "requests",
            Value::Number(
                stats_result
                    .get("requests")
                    .and_then(Json::as_u64)
                    .unwrap_or(0) as f64,
            ),
        ),
    ])
    .pretty();
    (report, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_of(&[]), 0.0);
        assert_eq!(median_of(&[7.0]), 7.0);
    }

    #[test]
    fn revision_variants_are_distinct_and_near_equal_size() {
        let all: Vec<String> = (0..16).map(revision_variant).collect();
        for (i, a) in all.iter().enumerate() {
            // Variants differ only in negation signs: at most four
            // extra `!` characters over the all-positive variant.
            assert!(
                a.len() >= all[0].len() && a.len() <= all[0].len() + 4,
                "variant {i} changed shape: {a}"
            );
            for b in &all[..i] {
                assert_ne!(a, b, "variant {i} collided");
            }
        }
    }

    #[test]
    fn baseline_comparison_flags_real_regressions_only() {
        let results = vec![
            BenchResult {
                name: "compile.dalal".into(),
                unit: "micros",
                median: 1000.0,
                trials: vec![1000.0],
                tolerance_pct: 15.0,
                extra: vec![],
            },
            BenchResult {
                name: "server.revise.cold".into(),
                unit: "micros",
                median: 10_000.0,
                trials: vec![10_000.0],
                tolerance_pct: 50.0,
                extra: vec![],
            },
        ];
        let cfg = SuiteConfig::default();
        let meta = RunMeta::capture();
        // Self-comparison: identical medians, zero regressions.
        let baseline = report_json(&cfg, &meta, &results);
        let comparisons = compare_against_baseline(&results, &baseline).unwrap();
        assert_eq!(comparisons.len(), 2);
        assert!(comparisons.iter().all(|c| !c.regressed));
        // A big relative slip that is also absolutely large regresses…
        let mut slower = results.clone();
        slower[1].median = 20_000.0;
        let comparisons = compare_against_baseline(&slower, &baseline).unwrap();
        assert!(comparisons.iter().any(|c| c.regressed));
        // …but a big relative slip under the absolute floor does not.
        let mut tiny = results.clone();
        tiny[0].median = 1400.0; // +40% but only +400us < 500us floor
        let comparisons = compare_against_baseline(&tiny, &baseline).unwrap();
        assert!(comparisons.iter().all(|c| !c.regressed));
    }

    #[test]
    fn baseline_schema_is_checked() {
        let results: Vec<BenchResult> = Vec::new();
        assert!(compare_against_baseline(&results, "not json").is_err());
        assert!(compare_against_baseline(&results, r#"{"benchmarks":[]}"#).is_err());
        assert!(
            compare_against_baseline(&results, r#"{"schema_version":999,"benchmarks":[]}"#)
                .is_err()
        );
    }
}
