//! `server_bench` — measure the revision service's artifact cache and
//! request latency, in process.
//!
//! The workload mirrors the multi-client pattern the server exists
//! for: for each of the eight operators, load a base, revise it (a
//! cold compile), answer a query batch, then drop the KB and replay
//! the identical load+revise — which for the model-based operators
//! must be a pure artifact-cache hit. The cold/warm latency ratio *is*
//! the cache's value; the report records both, plus the server's own
//! `stats` counters and a trait-object [`revkb_bench::EngineWorkload`]
//! cross-check.
//!
//! Writes `server_bench_report.json` and prints a summary grid.

use revkb_bench::{json::Value, run_engine_workload, EngineWorkload};
use revkb_logic::{parse, Signature};
use revkb_revision::{ModelBasedOp, ReviseBuilder};
use revkb_server::{Json, Server, ServerConfig};
use std::time::Instant;

const OPS: [&str; 8] = [
    "winslett", "borgida", "forbus", "satoh", "dalal", "weber", "gfuv", "widtio",
];

const THEORY: &str = "a & b; b -> c; c | d";
const REVISION: &str = "!b | !c";
const QUERIES: [&str; 4] = ["a", "c | d", "!(b & c)", "a & (c | d)"];

struct OpRun {
    op: &'static str,
    cold_revise_micros: u64,
    warm_revise_micros: u64,
    warm_cache: String,
    query_batch_micros: u64,
    compiled_size: Option<u64>,
}

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    let json = Json::parse(&response).expect("response is valid JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line} -> {response}"
    );
    json
}

fn timed(server: &Server, line: &str) -> (Json, u64) {
    let start = Instant::now();
    let json = call(server, line);
    (json, start.elapsed().as_micros() as u64)
}

fn run_op(server: &Server, op: &'static str) -> OpRun {
    let kb = format!("bench-{op}");
    let load = format!(r#"{{"cmd":"load","kb":"{kb}","t":"{THEORY}"}}"#);
    let revise = format!(r#"{{"cmd":"revise","kb":"{kb}","op":"{op}","p":"{REVISION}"}}"#);
    let qs: Vec<String> = QUERIES.iter().map(|q| format!("\"{q}\"")).collect();
    let query = format!(
        r#"{{"cmd":"query_batch","kb":"{kb}","qs":[{}]}}"#,
        qs.join(",")
    );

    call(server, &load);
    let (cold_resp, cold_revise_micros) = timed(server, &revise);
    let (_, query_batch_micros) = timed(server, &query);
    let compiled_size = cold_resp
        .get("result")
        .and_then(|r| r.get("compiled_size"))
        .and_then(Json::as_u64);

    // Drop and replay the identical session: the model-based compile
    // must now come out of the artifact cache.
    call(server, &format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#));
    call(server, &load);
    let (warm_resp, warm_revise_micros) = timed(server, &revise);
    let warm_cache = warm_resp
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    call(server, &format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#));

    OpRun {
        op,
        cold_revise_micros,
        warm_revise_micros,
        warm_cache,
        query_batch_micros,
        compiled_size,
    }
}

fn trait_dispatch_workload() -> EngineWorkload {
    let mut sig = Signature::new();
    let t = parse(&THEORY.replace(';', " & "), &mut sig).expect("bench theory parses");
    let p = parse(REVISION, &mut sig).expect("bench revision parses");
    let queries: Vec<_> = QUERIES
        .iter()
        .map(|q| parse(q, &mut sig).expect("bench query parses"))
        .collect();
    let mut engine = ReviseBuilder::new(ModelBasedOp::Dalal)
        .engine(&t, std::slice::from_ref(&p))
        .expect("bench compile succeeds");
    run_engine_workload(engine.as_mut(), &queries)
}

fn main() {
    let server = Server::new(ServerConfig::default());
    let runs: Vec<OpRun> = OPS.iter().map(|op| run_op(&server, op)).collect();

    let stats = call(&server, r#"{"cmd":"stats"}"#);
    let result = stats.get("result").expect("stats result");
    let cache = result.get("cache").expect("stats cache block");
    let cache_field = |key: &str| -> u64 { cache.get(key).and_then(Json::as_u64).unwrap_or(0) };
    let requests = result.get("requests").and_then(Json::as_u64).unwrap_or(0);

    let workload = trait_dispatch_workload();

    println!("== server_bench: artifact cache & request latency ==");
    println!(
        "{:<10} {:>16} {:>16} {:>10} {:>16} {:>14}",
        "operator", "cold_revise_us", "warm_revise_us", "cache", "query_batch_us", "compiled_size"
    );
    for run in &runs {
        println!(
            "{:<10} {:>16} {:>16} {:>10} {:>16} {:>14}",
            run.op,
            run.cold_revise_micros,
            run.warm_revise_micros,
            run.warm_cache,
            run.query_batch_micros,
            run.compiled_size
                .map_or_else(|| "-".to_string(), |s| s.to_string()),
        );
    }
    println!();
    println!(
        "requests={requests} cache: hits={} misses={} evictions={}",
        cache_field("hits"),
        cache_field("misses"),
        cache_field("evictions"),
    );
    println!(
        "trait-object dispatch ({}): single_us={} batch_us={} parallel_us={} answers_match={}",
        workload.engine,
        workload.single_wall_micros,
        workload.batch_wall_micros,
        workload.parallel_wall_micros,
        workload.answers_match,
    );

    let report = Value::object([
        ("bench", Value::string("server_bench")),
        (
            "threads",
            Value::Number(revkb_sat::default_threads() as f64),
        ),
        (
            "operators",
            Value::array(runs.iter().map(|run| {
                Value::object([
                    ("op", Value::string(run.op)),
                    (
                        "cold_revise_micros",
                        Value::Number(run.cold_revise_micros as f64),
                    ),
                    (
                        "warm_revise_micros",
                        Value::Number(run.warm_revise_micros as f64),
                    ),
                    ("warm_cache", Value::string(&run.warm_cache)),
                    (
                        "query_batch_micros",
                        Value::Number(run.query_batch_micros as f64),
                    ),
                    (
                        "compiled_size",
                        run.compiled_size
                            .map_or(Value::Null, |s| Value::Number(s as f64)),
                    ),
                ])
            })),
        ),
        (
            "cache",
            Value::object([
                ("hits", Value::Number(cache_field("hits") as f64)),
                ("misses", Value::Number(cache_field("misses") as f64)),
                ("evictions", Value::Number(cache_field("evictions") as f64)),
            ]),
        ),
        ("requests", Value::Number(requests as f64)),
        ("engine_workload", workload.to_json()),
    ]);
    if let Err(e) = std::fs::write("server_bench_report.json", report.pretty()) {
        eprintln!("could not write server_bench_report.json: {e}");
    } else {
        println!("(full measurements written to server_bench_report.json)");
    }
}
