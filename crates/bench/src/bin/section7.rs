//! Section 7: compactability for **generic data structures** with
//! polynomial-time model checking (Definition 7.1).
//!
//! ROBDDs are the canonical such structure: `ASK(D, M)` is a single
//! root-to-terminal walk. This binary illustrates *why* Section 7
//! generalises from formulas to arbitrary data structures, and what
//! its limits are:
//!
//! 1. **Data structures can beat formulas.** On the
//!    contradictory-pairs reduction family the exact minimum DNF of
//!    the revised base provably has `2ⁿ` terms, yet the ROBDD stays
//!    linear — so a negative result about *formulas* alone would be
//!    too weak, which is exactly why Theorem 7.1 is stated for any
//!    poly-time-`ASK` structure.
//! 2. **But no structure escapes the collapse argument.** The Theorem
//!    3.6 reduction is re-verified with the BDD as the model-checking
//!    engine (`ASK(D, C_π) ⟺ π` satisfiable): a polynomial-size BDD
//!    family for the revised bases would put 3-SAT in P/poly.
//!
//! ```text
//! cargo run --release -p revkb-bench --bin section7
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_bdd::BddManager;
use revkb_bench::Series;
use revkb_instances::{
    all_instances, contradictory_pairs, gamma_max, random_satisfiable, Thm36Family,
};
use revkb_logic::Alphabet;
use revkb_revision::minimize::minimum_dnf_of;
use revkb_revision::{revise_on, ModelBasedOp};

fn main() {
    println!("== Section 7: generic data structures (ROBDD as Definition 7.1's D) ==");
    println!();

    // 1. Two-level formulas vs BDDs on the pairs family.
    let mut dnf_series = Series::new("exact min-DNF literals");
    let mut bdd_series = Series::new("ROBDD nodes (interleaved order)");
    for n in 1..=4usize {
        let family = Thm36Family::new(n, contradictory_pairs(n));
        let vars: Vec<_> = family
            .b
            .iter()
            .chain(&family.y)
            .chain(&family.c)
            .copied()
            .collect();
        let alpha = Alphabet::new(vars.clone());
        let revised = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
        dnf_series.push(n as f64, minimum_dnf_of(&revised).literal_count() as f64);
        let mut mgr = BddManager::with_order(vars);
        let node = mgr.from_formula(&revised.to_dnf());
        bdd_series.push(n as f64, mgr.size(node) as f64);
    }
    println!("pairs family (T*D P, n contradictory clause pairs):");
    println!(
        "  {}: {}   [{}]",
        dnf_series.label,
        dnf_series.render(),
        dnf_series.growth()
    );
    println!(
        "  {}: {}   [{}]",
        bdd_series.label,
        bdd_series.render(),
        bdd_series.growth()
    );
    println!("  → the BDD is exponentially more succinct than any DNF here,");
    println!("    which is why Definition 7.1 quantifies over ALL poly-ASK structures.");
    println!();

    // 2. The Thm 3.6 reduction with BDD model checking as ASK.
    let universe: Vec<_> = gamma_max(3).into_iter().take(4).collect();
    let family = Thm36Family::new(3, universe.clone());
    let vars: Vec<_> = family
        .b
        .iter()
        .chain(&family.y)
        .chain(&family.c)
        .copied()
        .collect();
    let alpha = Alphabet::new(vars.clone());
    let revised = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
    let mut mgr = BddManager::with_order(vars);
    let node = mgr.from_formula(&revised.to_dnf());
    let mut checked = 0;
    let mut agreed = 0;
    for pi in all_instances(3, &universe) {
        checked += 1;
        if mgr.model_check(node, &family.c_pi(&pi)) == pi.satisfiable() {
            agreed += 1;
        }
    }
    println!("Theorem 7.1 reduction with ASK = BDD walk:");
    println!(
        "  ASK(D, C_π) ⟺ π satisfiable verified on {agreed}/{checked} instances \
         ({} BDD nodes)",
        mgr.size(node)
    );
    assert_eq!(agreed, checked, "Theorem 7.1 reduction check failed");
    println!("  → a polynomial-size D family would place 3-SAT in P/poly.");
    println!();

    // 3. Benign random workloads for contrast.
    let mut rng = StdRng::seed_from_u64(0x5EC7);
    let mut benign = Series::new("ROBDD nodes of T*D P on random (T,P)");
    for n in [4usize, 6, 8, 10] {
        let mut total = 0usize;
        let samples = 5;
        for _ in 0..samples {
            let t = random_satisfiable(&mut rng, 3, n as u32, 0);
            let p = random_satisfiable(&mut rng, 3, n as u32, 0);
            let alpha = Alphabet::of_formulas([&t, &p]);
            let revised = revise_on(ModelBasedOp::Dalal, &alpha, &t, &p);
            let mut mgr = BddManager::with_order(alpha.vars().to_vec());
            let node = mgr.from_formula(&revised.to_dnf());
            total += mgr.size(node);
        }
        benign.push(n as f64, (total / samples) as f64);
    }
    println!("contrast — random workloads:");
    println!(
        "  {}: {}   [{}]",
        benign.label,
        benign.render(),
        benign.growth()
    );
}
