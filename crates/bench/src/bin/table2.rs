//! Regenerates **Table 2** of the paper: "Is the iteratively revised
//! knowledge base compactable?" per operator × {general, bounded} ×
//! {logical, query} equivalence, for sequences of revisions.
//!
//! YES cells run the Section 5/6 constructions over growing revision
//! sequences, verify query equivalence against the iterated semantic
//! oracle and classify the size growth in `m`. NO cells re-verify the
//! Theorem 6.5 reduction (satisfiability ⟺ model checking after `n`
//! bounded revisions) exhaustively on a small clause universe.
//!
//! ```text
//! cargo run --release -p revkb-bench --bin table2
//! ```

use revkb_bench::{
    drain_telemetry, print_grid, print_workloads, run_batch_workload, BatchWorkload, Cell, Growth,
    RunMeta, Series, TableReport,
};
use revkb_instances::{all_instances, gamma_max, Thm36Family};
use revkb_logic::{Alphabet, Formula, Var};
use revkb_revision::compact::{
    borgida_iterated_auto, dalal_iterated_auto, forbus_iterated_auto, satoh_iterated_auto,
    weber_iterated_auto, winslett_iterated_auto, CompactRep,
};
use revkb_revision::{query_equivalent_enum, revise_iterated_on, widtio, ModelBasedOp, Theory};

fn main() {
    let columns = ["Gen/Logical", "Gen/Query", "Bnd/Logical", "Bnd/Query"];
    let mut rows: Vec<(String, Vec<(String, Cell)>)> = Vec::new();

    let thm65 = thm65_reduction_cell();

    {
        let _span = revkb_obs::span("GFUV");
        rows.push((
            "GFUV, Nebel".into(),
            vec![
                ("Gen/Logical".into(), table1_no("Th.3.7")),
                ("Gen/Query".into(), table1_no("Th.3.1")),
                ("Bnd/Logical".into(), table1_no("Th.4.1")),
                ("Bnd/Query".into(), table1_no("Th.4.1")),
            ],
        ));
    }

    for op in [
        ModelBasedOp::Winslett,
        ModelBasedOp::Borgida,
        ModelBasedOp::Forbus,
        ModelBasedOp::Satoh,
    ] {
        let _span = revkb_obs::span(op.name());
        let bq = iterated_bounded_query_cell(op);
        rows.push((
            op.name().into(),
            vec![
                ("Gen/Logical".into(), table1_no("Th.3.7")),
                ("Gen/Query".into(), table1_no("Th.3.2/3.3")),
                ("Bnd/Logical".into(), like(&thm65, "Th.6.5")),
                ("Bnd/Query".into(), bq),
            ],
        ));
    }

    // Dalal.
    let (dalal_gen, dalal_bnd) = {
        let _span = revkb_obs::span("Dalal");
        (
            iterated_general_cell(ModelBasedOp::Dalal),
            iterated_bounded_query_cell(ModelBasedOp::Dalal),
        )
    };
    rows.push((
        "Dalal".into(),
        vec![
            ("Gen/Logical".into(), table1_no("Th.3.6")),
            ("Gen/Query".into(), dalal_gen),
            ("Bnd/Logical".into(), like(&thm65, "Th.6.5")),
            ("Bnd/Query".into(), dalal_bnd),
        ],
    ));

    // Weber.
    let (weber_gen, weber_bnd) = {
        let _span = revkb_obs::span("Weber");
        (
            iterated_general_cell(ModelBasedOp::Weber),
            iterated_bounded_query_cell(ModelBasedOp::Weber),
        )
    };
    rows.push((
        "Weber".into(),
        vec![
            ("Gen/Logical".into(), table1_no("Th.3.6")),
            ("Gen/Query".into(), weber_gen),
            ("Bnd/Logical".into(), like(&thm65, "Th.6.5")),
            ("Bnd/Query".into(), weber_bnd),
        ],
    ));

    // WIDTIO.
    let wid = {
        let _span = revkb_obs::span("WIDTIO");
        widtio_iterated_cell()
    };
    rows.push((
        "WIDTIO".into(),
        vec![
            ("Gen/Logical".into(), wid.clone()),
            ("Gen/Query".into(), like_yes(&wid, "def.")),
            ("Bnd/Logical".into(), like_yes(&wid, "def.")),
            ("Bnd/Query".into(), like_yes(&wid, "def.")),
        ],
    ));

    print_grid("Table 2: iterated revision compactability", &columns, &rows);
    println!("== evidence per cell ==");
    for (row, cells) in &rows {
        for (col, cell) in cells {
            println!("[{row} / {col}] {} ({})", cell.paper_claim, cell.reference);
            println!("    {}", cell.evidence);
            for s in &cell.series {
                println!("    {}: {}   [{}]", s.label, s.render(), s.growth());
            }
        }
    }

    let workloads = query_workloads();
    print_workloads(&workloads);

    let report = TableReport {
        table: "Table 2".into(),
        meta: RunMeta::capture(),
        telemetry: drain_telemetry(),
        rows,
        workloads,
    };
    if let Err(e) = report.write_json("table2_report.json") {
        eprintln!("could not write table2_report.json: {e}");
    } else {
        println!("(full measurements written to table2_report.json)");
    }
}

/// Per-operator batch workloads: each operator's iterated compact
/// representation (m = 4 revisions) answers a 60-query batch through
/// a sharded [`revkb_sat::SessionPool`] — one sequential pass, one
/// parallel pass, merged pool statistics and both wall times in the
/// report.
fn query_workloads() -> Vec<(String, BatchWorkload)> {
    let (t, ps) = workload(4);
    let threads = revkb_sat::default_threads();
    ModelBasedOp::ALL
        .iter()
        .enumerate()
        .filter_map(|(op_index, &op)| {
            let rep = build_iterated(op, &t, &ps)?;
            let mut seed = 0x7AB1E2u64 ^ op_index as u64;
            let queries: Vec<Formula> = (0..60)
                .map(|_| revkb_sat::pseudo_random_formula(&mut seed, 3, 6))
                .collect();
            Some((
                op.name().to_string(),
                run_batch_workload(&rep.formula, &queries, threads),
            ))
        })
        .collect()
}

fn table1_no(reference: &'static str) -> Cell {
    Cell {
        paper_claim: "NO",
        reference,
        consistent: true,
        evidence: "inherited from Table 1 (NO for a single revision implies NO iterated); \
                   see the table1 binary for the measured evidence"
            .into(),
        series: vec![],
    }
}

fn like(cell: &Cell, reference: &'static str) -> Cell {
    Cell {
        reference,
        ..cell.clone()
    }
}

fn like_yes(cell: &Cell, reference: &'static str) -> Cell {
    like(cell, reference)
}

/// The iterated workload: `T = ⋀xᵢ` over 6 letters and a *uniform*
/// sequence of 2-letter updates (rotating "not both" constraints) —
/// uniform shape so that per-step size increments are comparable and
/// the growth classification in `m` is meaningful.
fn workload(m: usize) -> (Formula, Vec<Formula>) {
    let t = Formula::and_all((0..6u32).map(|i| Formula::var(Var(i))));
    let ps: Vec<Formula> = (0..m)
        .map(|i| {
            let a = (i % 6) as u32;
            let b = ((i + 1) % 6) as u32;
            Formula::var(Var(a)).not().or(Formula::var(Var(b)).not())
        })
        .collect();
    (t, ps)
}

fn build_iterated(op: ModelBasedOp, t: &Formula, ps: &[Formula]) -> Option<CompactRep> {
    match op {
        ModelBasedOp::Dalal => Some(dalal_iterated_auto(t, ps)),
        ModelBasedOp::Weber => weber_iterated_auto(t, ps),
        ModelBasedOp::Winslett => Some(winslett_iterated_auto(t, ps)),
        ModelBasedOp::Borgida => Some(borgida_iterated_auto(t, ps)),
        ModelBasedOp::Forbus => Some(forbus_iterated_auto(t, ps)),
        ModelBasedOp::Satoh => satoh_iterated_auto(t, ps),
    }
}

/// A general-case (unbounded-P allowed) iterated YES cell — Dalal's
/// `Φₘ` (Thm 5.1) or Weber's formula (10) (Cor 5.2).
fn iterated_general_cell(op: ModelBasedOp) -> Cell {
    let reference = if op == ModelBasedOp::Dalal {
        "Th.5.1"
    } else {
        "Cor.5.2"
    };
    let mut series = Series::new(format!("iterated {} |T'| vs m", op.name()));
    let mut verified = 0;
    let mut total = 0;
    for m in 1..=6usize {
        let (t, ps) = workload(m);
        let Some(rep) = build_iterated(op, &t, &ps) else {
            continue;
        };
        series.push(m as f64, rep.size() as f64);
        if m <= 4 {
            total += 1;
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_iterated_on(op, &alpha, &t, &ps);
            if query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base) {
                verified += 1;
            }
        }
    }
    let growth = series.growth();
    Cell {
        paper_claim: "YES",
        reference,
        consistent: verified == total && matches!(growth, Growth::Polynomial { .. }),
        evidence: format!(
            "query-equivalent to the iterated oracle on {verified}/{total} \
             prefixes; size grows {growth} in m"
        ),
        series: vec![series],
    }
}

/// A bounded iterated query-equivalence YES cell (Cor 6.4 / Th 5.1).
fn iterated_bounded_query_cell(op: ModelBasedOp) -> Cell {
    let reference = match op {
        ModelBasedOp::Dalal => "Th.5.1",
        ModelBasedOp::Weber => "Cor.5.2",
        _ => "Cor.6.4",
    };
    let mut series = Series::new(format!(
        "iterated bounded {} |T'| vs m (|V(Pⁱ)| ≤ 2)",
        op.name()
    ));
    let mut verified = 0;
    let mut total = 0;
    let max_m = match op {
        // The QBF-expanded constructions carry a 2^{|V(P)|} factor per
        // step; keep the sweep modest for the pointwise operators.
        ModelBasedOp::Winslett | ModelBasedOp::Borgida | ModelBasedOp::Forbus => 8,
        _ => 8,
    };
    for m in 1..=max_m {
        let (t, ps) = workload(m);
        let Some(rep) = build_iterated(op, &t, &ps) else {
            continue;
        };
        series.push(m as f64, rep.size() as f64);
        if m <= 4 {
            total += 1;
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_iterated_on(op, &alpha, &t, &ps);
            if query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base) {
                verified += 1;
            }
        }
    }
    let growth = series.growth();
    Cell {
        paper_claim: "YES",
        reference,
        consistent: verified == total && matches!(growth, Growth::Polynomial { .. }),
        evidence: format!(
            "query-equivalent to the iterated oracle on {verified}/{total} \
             prefixes; size grows {growth} in m"
        ),
        series: vec![series],
    }
}

/// The Theorem 6.5 NO evidence: after n constant-size revisions the
/// model-check encodes 3-SAT; verified exhaustively.
fn thm65_reduction_cell() -> Cell {
    let universe: Vec<_> = gamma_max(3).into_iter().take(3).collect();
    let family = Thm36Family::new(3, universe.clone());
    let alpha = Alphabet::new(
        family
            .b
            .iter()
            .chain(&family.y)
            .chain(&family.c)
            .copied()
            .collect(),
    );
    let mut checked = 0;
    let mut ok = true;
    let results: Vec<_> = ModelBasedOp::ALL
        .iter()
        .map(|&op| revise_iterated_on(op, &alpha, &family.t, &family.p_sequence))
        .collect();
    for pi in all_instances(3, &universe) {
        checked += 1;
        let c = family.c_pi(&pi);
        for ms in &results {
            ok &= ms.contains(&c) == pi.satisfiable();
        }
    }
    Cell {
        paper_claim: "NO",
        reference: "Th.6.5",
        consistent: ok,
        evidence: format!(
            "Thm 6.5 reduction verified for all six operators on \
             {checked}/{checked} instances (operators coincide on the family, \
             as the proof shows)"
        ),
        series: vec![],
    }
}

/// WIDTIO iterated: size stays bounded by the inputs at every step.
fn widtio_iterated_cell() -> Cell {
    let t = Theory::new((0..6u32).map(|i| Formula::var(Var(i))));
    let mut series = Series::new("iterated WIDTIO |T'| vs m");
    let mut ok = true;
    let mut current = t.clone();
    let mut input_size = t.size();
    for m in 1..=6usize {
        let p = Formula::var(Var(((m - 1) % 6) as u32)).not();
        input_size += p.size();
        current = widtio(&current, &p);
        ok &= current.size() <= input_size;
        series.push(m as f64, current.size() as f64);
    }
    Cell {
        paper_claim: "YES",
        reference: "§3",
        consistent: ok,
        evidence: "|T *wid P¹ … *wid Pᵐ| ≤ |T| + Σ|Pⁱ| held at every step".into(),
        series: vec![series],
    }
}
