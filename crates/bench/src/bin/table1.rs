//! Regenerates **Table 1** of the paper: "Is the revised knowledge
//! base compactable?" for a single revision, per operator ×
//! {general, bounded} × {logical, query} equivalence.
//!
//! YES cells are *demonstrated*: the paper's construction is built on
//! a scaling workload, its size growth is classified
//! polynomial/exponential, and its equivalence to the semantic oracle
//! is machine-checked on the enumerable sizes.
//!
//! NO cells are conditional theorems (no polynomial representation
//! unless PH collapses) — they cannot be "measured" into truth.
//! They are *evidenced*: the reduction behind the theorem is
//! re-verified exhaustively on a small clause universe, and the
//! best-known representation (explicit possible-worlds disjunction /
//! exact minimum two-level form) is measured on the blow-up family.
//!
//! ```text
//! cargo run --release -p revkb-bench --bin table1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_bench::{
    drain_telemetry, print_grid, print_workloads, run_batch_workload, BatchWorkload, Cell, Growth,
    RunMeta, Series, TableReport,
};
use revkb_instances::{
    all_instances, contradictory_pairs, gamma_max, random_kcnf, random_satisfiable, NebelExample,
    Thm31Family, Thm36Family, WinslettChain,
};
use revkb_logic::{Alphabet, Formula, Var};
use revkb_revision::compact::{
    borgida_bounded, dalal_bounded, dalal_compact_auto, forbus_bounded, satoh_bounded,
    weber_bounded, weber_compact_auto, winslett_bounded,
};
use revkb_revision::minimize::minimum_dnf_of;
use revkb_revision::{
    gfuv_entails, gfuv_explicit, query_equivalent_enum, revise_on, widtio, ModelBasedOp, ModelSet,
    RevisedKb, Theory,
};

fn main() {
    let columns = ["Gen/Logical", "Gen/Query", "Bnd/Logical", "Bnd/Query"];
    let mut rows: Vec<(String, Vec<(String, Cell)>)> = Vec::new();

    // --- GFUV / Nebel -------------------------------------------------
    let (gfuv_gen, gfuv_bnd) = {
        let _span = revkb_obs::span("GFUV");
        (gfuv_general_cell(), gfuv_bounded_cell())
    };
    rows.push((
        "GFUV, Nebel".into(),
        vec![
            ("Gen/Logical".into(), no_from(&gfuv_gen, "Th.3.7")),
            ("Gen/Query".into(), gfuv_gen),
            ("Bnd/Logical".into(), no_from(&gfuv_bnd, "Th.4.1")),
            ("Bnd/Query".into(), gfuv_bnd),
        ],
    ));

    // --- model-based NO evidence (shared) ------------------------------
    let reduction_cell = thm36_reduction_cell();

    for op in [
        ModelBasedOp::Winslett,
        ModelBasedOp::Borgida,
        ModelBasedOp::Forbus,
        ModelBasedOp::Satoh,
    ] {
        let _span = revkb_obs::span(op.name());
        let (gl, gq) = (
            no_like(&reduction_cell, "Th.3.7"),
            no_like(&reduction_cell, refs_general_query(op)),
        );
        let bl = bounded_cell(op, true);
        let bq = yes_like(&bl, refs_bounded(op));
        rows.push((
            op.name().into(),
            vec![
                ("Gen/Logical".into(), gl),
                ("Gen/Query".into(), gq),
                ("Bnd/Logical".into(), bl),
                ("Bnd/Query".into(), bq),
            ],
        ));
    }

    // --- Dalal ---------------------------------------------------------
    let (dalal_query, dalal_bnd) = {
        let _span = revkb_obs::span("Dalal");
        (
            dalal_general_query_cell(),
            bounded_cell(ModelBasedOp::Dalal, true),
        )
    };
    rows.push((
        "Dalal".into(),
        vec![
            ("Gen/Logical".into(), no_like(&reduction_cell, "Th.3.6")),
            ("Gen/Query".into(), dalal_query),
            ("Bnd/Logical".into(), dalal_bnd.clone()),
            ("Bnd/Query".into(), yes_like(&dalal_bnd, "Th.3.4/4.6")),
        ],
    ));

    // --- Weber ---------------------------------------------------------
    let (weber_query, weber_bnd) = {
        let _span = revkb_obs::span("Weber");
        (
            weber_general_query_cell(),
            bounded_cell(ModelBasedOp::Weber, true),
        )
    };
    rows.push((
        "Weber".into(),
        vec![
            ("Gen/Logical".into(), no_like(&reduction_cell, "Th.3.6")),
            ("Gen/Query".into(), weber_query),
            ("Bnd/Logical".into(), weber_bnd.clone()),
            ("Bnd/Query".into(), yes_like(&weber_bnd, "Th.3.5/4.6")),
        ],
    ));

    // --- WIDTIO ----------------------------------------------------
    let widtio_cell = {
        let _span = revkb_obs::span("WIDTIO");
        widtio_cell()
    };
    rows.push((
        "WIDTIO".into(),
        vec![
            ("Gen/Logical".into(), widtio_cell.clone()),
            ("Gen/Query".into(), yes_like(&widtio_cell, "def.")),
            ("Bnd/Logical".into(), yes_like(&widtio_cell, "def.")),
            ("Bnd/Query".into(), yes_like(&widtio_cell, "def.")),
        ],
    ));

    print_grid("Table 1: single revision compactability", &columns, &rows);
    print_details(&rows);

    let workloads = query_workloads();
    print_workloads(&workloads);

    bdd_exercise();

    let report = TableReport {
        table: "Table 1".into(),
        meta: RunMeta::capture(),
        telemetry: drain_telemetry(),
        rows,
        workloads,
    };
    if let Err(e) = report.write_json("table1_report.json") {
        eprintln!("could not write table1_report.json: {e}");
    } else {
        println!("(full measurements written to table1_report.json)");
    }
}

/// Under tracing only: push every model-based operator through the
/// ROBDD compiler backend on a small shared workload so the `bdd.*`
/// instruments (apply-cache hits/misses, unique-table size, node
/// allocations) show up in the telemetry section alongside the
/// formula-route ones. A no-op when `REVKB_TRACE` is off, keeping the
/// untraced run's work — and wall time — unchanged.
fn bdd_exercise() {
    if !revkb_obs::enabled() {
        return;
    }
    let _span = revkb_obs::span("table1.bdd_exercise");
    let t = Formula::and_all((0..6u32).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    for op in ModelBasedOp::ALL {
        match RevisedKb::compile_via_bdd(op, &t, &p) {
            Ok(kb) => {
                let _ = kb.entails(&Formula::var(Var(2)));
            }
            Err(e) => eprintln!("bdd exercise skipped for {}: {e}", op.name()),
        }
    }
}

/// Answer a table1-sized batch (60 queries) against each operator's
/// bounded compact representation through a sharded
/// [`revkb_sat::SessionPool`] — one sequential pass and one parallel
/// pass over the same pool, reporting worker count, merged pool
/// statistics, and the head-to-head wall times. A mismatch between
/// the two passes would be flagged in the report (`answers_match`).
fn query_workloads() -> Vec<(String, BatchWorkload)> {
    let n = 12u32;
    let threads = revkb_sat::default_threads();
    let t = Formula::and_all((0..n).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    [
        ModelBasedOp::Winslett,
        ModelBasedOp::Borgida,
        ModelBasedOp::Forbus,
        ModelBasedOp::Satoh,
        ModelBasedOp::Dalal,
        ModelBasedOp::Weber,
    ]
    .into_iter()
    .enumerate()
    .map(|(op_index, op)| {
        let rep = match op {
            ModelBasedOp::Winslett => winslett_bounded(&t, &p),
            ModelBasedOp::Borgida => borgida_bounded(&t, &p),
            ModelBasedOp::Forbus => forbus_bounded(&t, &p),
            ModelBasedOp::Satoh => satoh_bounded(&t, &p),
            ModelBasedOp::Dalal => dalal_bounded(&t, &p),
            ModelBasedOp::Weber => weber_bounded(&t, &p),
        };
        let mut seed = 0x7AB1E1u64 ^ op_index as u64;
        let queries: Vec<Formula> = (0..60)
            .map(|_| revkb_sat::pseudo_random_formula(&mut seed, 3, n))
            .collect();
        (
            op.name().to_string(),
            run_batch_workload(&rep.formula, &queries, threads),
        )
    })
    .collect()
}

fn print_details(rows: &[(String, Vec<(String, Cell)>)]) {
    println!("== evidence per cell ==");
    for (row, cells) in rows {
        for (col, cell) in cells {
            println!("[{row} / {col}] {} ({})", cell.paper_claim, cell.reference);
            println!("    {}", cell.evidence);
            for s in &cell.series {
                println!("    {}: {}   [{}]", s.label, s.render(), s.growth());
            }
        }
    }
    println!();
}

/// Clone a NO cell with a different reference.
fn no_like(cell: &Cell, reference: &'static str) -> Cell {
    Cell {
        reference,
        ..cell.clone()
    }
}

fn no_from(cell: &Cell, reference: &'static str) -> Cell {
    no_like(cell, reference)
}

/// Clone a YES cell with a different reference.
fn yes_like(cell: &Cell, reference: &'static str) -> Cell {
    Cell {
        reference,
        ..cell.clone()
    }
}

fn refs_general_query(op: ModelBasedOp) -> &'static str {
    match op {
        ModelBasedOp::Forbus => "Th.3.3",
        _ => "Th.3.2",
    }
}

fn refs_bounded(op: ModelBasedOp) -> &'static str {
    match op {
        ModelBasedOp::Winslett => "Prop.4.3",
        ModelBasedOp::Borgida => "Cor.4.4",
        ModelBasedOp::Forbus => "Th.4.5",
        _ => "Th.4.6",
    }
}

/// GFUV general case: Nebel's family — explicit representation doubles.
fn gfuv_general_cell() -> Cell {
    let mut series = Series::new("explicit |T*GFUV P| on Nebel family");
    let mut worlds = Series::new("|W(T,P)|");
    for m in 1..=9usize {
        let ex = NebelExample::new(m);
        let explicit = gfuv_explicit(&ex.t, &ex.p, 1 << 12).expect("within limit");
        series.push(m as f64, explicit.size() as f64);
        worlds.push(
            m as f64,
            revkb_revision::world_count(&ex.t, &ex.p, 1 << 12).unwrap() as f64,
        );
    }
    // Reduction correctness (Theorem 3.1) on a small universe.
    let universe: Vec<_> = gamma_max(3).into_iter().take(3).collect();
    let family = Thm31Family::new(3, universe.clone());
    let mut checked = 0;
    let ok = all_instances(3, &universe).iter().all(|pi| {
        checked += 1;
        gfuv_entails(&family.t, &family.p, &family.query(pi)) == pi.satisfiable()
    });
    let growth = series.growth();
    Cell {
        paper_claim: "NO",
        reference: "Th.3.1",
        consistent: ok && matches!(growth, Growth::Exponential { .. }),
        evidence: format!(
            "Thm 3.1 reduction verified on {checked}/{checked} instances; \
             explicit representation grows {growth}"
        ),
        series: vec![series, worlds],
    }
}

/// GFUV bounded case: Winslett's chain — |P| = 1 yet worlds explode.
fn gfuv_bounded_cell() -> Cell {
    let mut worlds = Series::new("|W(T2,P2)| with |P2| = 1 (Winslett chain)");
    for m in 1..=7usize {
        let ex = WinslettChain::new(m);
        worlds.push(
            m as f64,
            revkb_revision::world_count(&ex.t, &ex.p, 1 << 13).unwrap() as f64,
        );
    }
    let growth = worlds.growth();
    Cell {
        paper_claim: "NO",
        reference: "Th.4.1",
        consistent: matches!(growth, Growth::Exponential { .. }),
        evidence: format!("possible worlds under a constant-size P grow {growth}"),
        series: vec![worlds],
    }
}

/// The shared NO evidence for model-based operators: the Theorem 3.6 /
/// 6.5 family, reduction verified + best-known representation
/// measured.
fn thm36_reduction_cell() -> Cell {
    let universe: Vec<_> = gamma_max(3).into_iter().take(4).collect();
    let family = Thm36Family::new(3, universe.clone());
    let alpha = Alphabet::new(
        family
            .b
            .iter()
            .chain(&family.y)
            .chain(&family.c)
            .copied()
            .collect(),
    );
    let dalal = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
    let weber = revise_on(ModelBasedOp::Weber, &alpha, &family.t, &family.p_single);
    let mut checked = 0;
    let ok = all_instances(3, &universe).iter().all(|pi| {
        checked += 1;
        let c = family.c_pi(pi);
        dalal.contains(&c) == pi.satisfiable() && weber.contains(&c) == pi.satisfiable()
    });
    // Best-known representation growth: the contradictory-pairs
    // universe makes the revised base's *exact minimum DNF* provably
    // 2^n terms (each maximal satisfiable clause subset needs its own
    // cube) — measured here.
    let mut series = Series::new("exact min-DNF literals of T*D P (pairs universe, n atoms)");
    for n in 1..=4usize {
        let family = Thm36Family::new(n, contradictory_pairs(n));
        let alpha = Alphabet::new(
            family
                .b
                .iter()
                .chain(&family.y)
                .chain(&family.c)
                .copied()
                .collect(),
        );
        let revised = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
        series.push(n as f64, minimum_dnf_of(&revised).literal_count() as f64);
    }
    let growth = series.growth();
    Cell {
        paper_claim: "NO",
        reference: "Th.3.6",
        consistent: ok && matches!(growth, Growth::Exponential { .. }),
        evidence: format!(
            "Thm 3.6 reduction (SAT ⟺ model check) verified on {checked}/{checked} \
             instances; exact minimum two-level size of the revised base grows \
             {growth} on the pairs universe"
        ),
        series: vec![series],
    }
}

/// Dalal, general case, query equivalence: Theorem 3.4's construction
/// scales polynomially and is query-equivalent on enumerable sizes.
fn dalal_general_query_cell() -> Cell {
    let mut rng = StdRng::seed_from_u64(0xDA1A1);
    let mut series = Series::new("|T'| = |T[X/Y] ∧ P ∧ EXA(k)| on random 3CNF");
    let mut verified = 0;
    let mut total = 0;
    for n in [4usize, 6, 8, 10, 12, 16, 20] {
        let t =
            random_satisfiable(&mut rng, 1, 1, 0).and(random_kcnf(&mut rng, n as u32, 2 * n, 3));
        let t = if revkb_sat::satisfiable(&t) {
            t
        } else {
            Formula::and_all((0..n as u32).map(|i| Formula::var(Var(i))))
        };
        let p = random_satisfiable(&mut rng, 3, (n as u32).min(6), 0);
        let rep = dalal_compact_auto(&t, &p);
        series.push(n as f64, rep.size() as f64);
        if n <= 8 {
            total += 1;
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_on(ModelBasedOp::Dalal, &alpha, &t, &p);
            if query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base) {
                verified += 1;
            }
        }
    }
    let growth = series.growth();
    Cell {
        paper_claim: "YES",
        reference: "Th.3.4",
        consistent: verified == total && matches!(growth, Growth::Polynomial { .. }),
        evidence: format!(
            "construction query-equivalent to the oracle on {verified}/{total} \
             enumerable instances; size grows {growth}"
        ),
        series: vec![series],
    }
}

/// Weber, general case, query equivalence: Theorem 3.5.
fn weber_general_query_cell() -> Cell {
    let mut rng = StdRng::seed_from_u64(0x3EBE6);
    let mut series = Series::new("|T'| = |T[Ω/Z] ∧ P| on random 3CNF");
    let mut verified = 0;
    let mut total = 0;
    for n in [4usize, 6, 8, 10, 12] {
        let t = random_kcnf(&mut rng, n as u32, 2 * n, 3);
        let t = if revkb_sat::satisfiable(&t) {
            t
        } else {
            Formula::and_all((0..n as u32).map(|i| Formula::var(Var(i))))
        };
        let p = random_satisfiable(&mut rng, 3, (n as u32).min(5), 0);
        match weber_compact_auto(&t, &p) {
            None => continue,
            Some(rep) => {
                series.push(n as f64, rep.size() as f64);
                if n <= 8 {
                    total += 1;
                    let alpha = Alphabet::new(rep.base.clone());
                    let oracle = revise_on(ModelBasedOp::Weber, &alpha, &t, &p);
                    if query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base) {
                        verified += 1;
                    }
                }
            }
        }
    }
    let growth = series.growth();
    Cell {
        paper_claim: "YES",
        reference: "Th.3.5",
        consistent: verified == total && matches!(growth, Growth::Polynomial { .. }),
        evidence: format!(
            "construction query-equivalent on {verified}/{total} enumerable \
             instances; |T'| = |T| + |P| exactly; growth {growth}"
        ),
        series: vec![series],
    }
}

/// Bounded-case cell for one operator: formulas (5)–(9), logically
/// equivalent and linear in |T|.
fn bounded_cell(op: ModelBasedOp, _logical: bool) -> Cell {
    let mut series = Series::new(format!(
        "|T'| bounded construction, |V(P)| = 2, {}",
        op.name()
    ));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    let mut verified = 0;
    let mut total = 0;
    for n in [4usize, 8, 12, 16, 20] {
        let t = Formula::and_all((0..n as u32).map(|i| Formula::var(Var(i))));
        let rep = match op {
            ModelBasedOp::Winslett => winslett_bounded(&t, &p),
            ModelBasedOp::Borgida => borgida_bounded(&t, &p),
            ModelBasedOp::Forbus => forbus_bounded(&t, &p),
            ModelBasedOp::Satoh => satoh_bounded(&t, &p),
            ModelBasedOp::Dalal => dalal_bounded(&t, &p),
            ModelBasedOp::Weber => weber_bounded(&t, &p),
        };
        series.push(n as f64, rep.size() as f64);
        if n <= 12 {
            total += 1;
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_on(op, &alpha, &t, &p);
            let got = ModelSet::of_formula(alpha, &rep.formula);
            if got == oracle {
                verified += 1;
            }
        }
    }
    let growth = series.growth();
    let poly = matches!(growth, Growth::Polynomial { .. });
    Cell {
        paper_claim: "YES",
        reference: refs_bounded(op),
        consistent: verified == total && poly,
        evidence: format!(
            "logically equivalent to the oracle on {verified}/{total} instances; \
             size grows {growth} in |T| with |V(P)| fixed"
        ),
        series: vec![series],
    }
}

/// WIDTIO: |T *wid P| ≤ |T| + |P| by construction.
fn widtio_cell() -> Cell {
    let mut rng = StdRng::seed_from_u64(0x31D710);
    let mut series = Series::new("|T *wid P| vs |T| + |P| (random theories)");
    let mut ok = true;
    for n in [4usize, 8, 12, 16] {
        let formulas: Vec<Formula> = (0..n)
            .map(|_| revkb_instances::random_formula(&mut rng, 2, n as u32, 0))
            .collect();
        let t = Theory::new(formulas);
        let p = random_satisfiable(&mut rng, 2, n as u32, 0);
        let result = widtio(&t, &p);
        ok &= result.size() <= t.size() + p.size();
        series.push((t.size() + p.size()) as f64, result.size() as f64);
    }
    Cell {
        paper_claim: "YES",
        reference: "§3",
        consistent: ok,
        evidence: "|T *wid P| ≤ |T| + |P| held on every sampled instance".into(),
        series: vec![series],
    }
}
