//! `revkb-bench` — the continuous-performance regression harness.
//!
//! ```text
//! revkb-bench                         # run the suite, write BENCH_PR10.json
//! revkb-bench --baseline BENCH_PR9.json   # compare; exit 1 on regression
//! revkb-bench --load-only             # just the load generator, no report
//! ```
//!
//! The suite is fixed and named (see [`revkb_bench::suite`]): eight
//! per-operator compiles, sequential-vs-parallel batch queries with
//! histogram percentiles, BDD apply, the Tseitin transform, the
//! artifact-cache touch cost, cold-vs-warm server revises over
//! loopback TCP, cold-boot recovery from a WAL data directory, and
//! replication (replica catch-up and read fan-out across replicas).
//! Instances are seeded (`REVKB_BENCH_SEED`), trials are medians over
//! `REVKB_BENCH_TRIALS` runs after `REVKB_BENCH_WARMUP` warmups.
//!
//! Also regenerates `server_bench_report.json` (the per-operator
//! cold/warm grid formerly produced by the separate `server_bench`
//! binary) unless `--no-server-report` is given.
//!
//! `--load-only` skips everything except the open-loop load generator
//! (`REVKB_BENCH_CONNS` connections against a spawned `revkb-server`)
//! and writes no report files — the mode CI's connection-count smoke
//! uses.

use revkb_bench::suite::{
    compare_against_baseline, report_json, run_suite, server_ops_report, SuiteConfig,
};
use revkb_bench::RunMeta;
use std::process::ExitCode;

const USAGE: &str = "usage: revkb-bench [--out FILE] [--baseline FILE] [--warn-only] \
                     [--seed N] [--trials N] [--warmup N] [--tolerance-pct X] \
                     [--no-server-report] [--load-only]";

struct Args {
    out: String,
    baseline: Option<String>,
    warn_only: bool,
    server_report: bool,
    load_only: bool,
    config: SuiteConfig,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        out: "BENCH_PR10.json".to_string(),
        baseline: None,
        warn_only: false,
        server_report: true,
        load_only: false,
        config: SuiteConfig::from_env(),
    };
    let mut iter = args.iter();
    let value = |iter: &mut std::slice::Iter<String>, flag: &str| {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => parsed.out = value(&mut iter, "--out")?,
            "--baseline" => parsed.baseline = Some(value(&mut iter, "--baseline")?),
            "--warn-only" => parsed.warn_only = true,
            "--no-server-report" => parsed.server_report = false,
            "--load-only" => parsed.load_only = true,
            "--seed" => {
                parsed.config.seed = value(&mut iter, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--trials" => {
                parsed.config.trials = value(&mut iter, "--trials")?
                    .parse::<usize>()
                    .map_err(|_| "--trials needs an integer".to_string())?
                    .max(1);
            }
            "--warmup" => {
                parsed.config.warmup = value(&mut iter, "--warmup")?
                    .parse()
                    .map_err(|_| "--warmup needs an integer".to_string())?;
            }
            "--tolerance-pct" => {
                parsed.config.tolerance_pct = Some(
                    value(&mut iter, "--tolerance-pct")?
                        .parse()
                        .map_err(|_| "--tolerance-pct needs a number".to_string())?,
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("revkb-bench: {message}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Read the baseline up front: when `--baseline` and `--out` name
    // the same file, the comparison must use the old contents, not the
    // report this run is about to write.
    let baseline = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("revkb-bench: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let meta = RunMeta::capture();
    println!(
        "== revkb-bench: seed={} trials={} warmup={} threads={} ==",
        args.config.seed, args.config.trials, args.config.warmup, meta.threads
    );
    let results = if args.load_only {
        revkb_bench::load::load_benches(&args.config)
    } else {
        run_suite(&args.config)
    };

    println!(
        "{:<22} {:>12} {:>10} {:>8}",
        "benchmark", "median_us", "min_us", "tol_%"
    );
    for r in &results {
        let min = r.trials.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{:<22} {:>12.0} {:>10.0} {:>8.0}",
            r.name, r.median, min, r.tolerance_pct
        );
    }
    println!();

    // Load-only runs are smoke checks: print the table, write nothing
    // (a partial report would shadow the real BENCH_PR10.json).
    if !args.load_only {
        let report = report_json(&args.config, &meta, &results);
        if let Err(e) = std::fs::write(&args.out, &report) {
            eprintln!("revkb-bench: cannot write {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
        println!("report written to {}", args.out);
    }

    if args.server_report && !args.load_only {
        let (server_report, summary) = server_ops_report(&args.config, &meta);
        print!("{summary}");
        if let Err(e) = std::fs::write("server_bench_report.json", server_report) {
            eprintln!("revkb-bench: cannot write server_bench_report.json: {e}");
            return ExitCode::FAILURE;
        }
        println!("(per-operator grid written to server_bench_report.json)\n");
    }

    if let (Some(path), Some(baseline)) = (&args.baseline, &baseline) {
        let comparisons = match compare_against_baseline(&results, baseline) {
            Ok(c) => c,
            Err(message) => {
                eprintln!("revkb-bench: {message}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{:<22} {:>12} {:>12} {:>9} {:>8}  verdict",
            "benchmark", "baseline_us", "current_us", "delta_%", "tol_%"
        );
        let mut regressions = 0usize;
        for c in &comparisons {
            let verdict = if c.regressed {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<22} {:>12.0} {:>12.0} {:>+9.1} {:>8.0}  {verdict}",
                c.name, c.baseline, c.current, c.delta_pct, c.tolerance_pct
            );
        }
        if regressions > 0 {
            eprintln!(
                "revkb-bench: {regressions} regression(s) beyond tolerance vs {path}{}",
                if args.warn_only { " (warn-only)" } else { "" }
            );
            if !args.warn_only {
                return ExitCode::FAILURE;
            }
        } else {
            println!("no regressions vs {path}");
        }
    }
    ExitCode::SUCCESS
}
