//! The revision-vs-update postulate matrix: which KM postulates each
//! model-based operator satisfies, decided by sampling (violations
//! come with concrete counterexamples). An extension experiment
//! grounding the paper's §1 framing (AGM revision \[1,12\] vs KM update
//! \[19\]) in executable checks.
//!
//! ```text
//! cargo run --release -p revkb-bench --bin postulates
//! ```

use revkb_logic::{render, Signature};
use revkb_revision::{postulate_report, ModelBasedOp, Postulate};

fn main() {
    let cases = 300;
    let all: Vec<Postulate> = Postulate::REVISION
        .iter()
        .chain(Postulate::UPDATE.iter())
        .copied()
        .collect();

    println!("== KM postulates by operator ({cases} sampled instances each) ==");
    println!("(✓ = no violation found; ✗ = violated, counterexample recorded)");
    println!();
    print!("{:<10}", "");
    for p in &all {
        print!("{:>5}", format!("{p:?}"));
    }
    println!();
    println!("{}", "-".repeat(10 + 5 * all.len()));

    let mut violations: Vec<(ModelBasedOp, Postulate, String)> = Vec::new();
    for op in ModelBasedOp::ALL {
        print!("{:<10}", op.name());
        let report = postulate_report(op, &all, cases, 0xAB);
        for (p, _held, failed, ce) in report {
            print!("{:>5}", if failed == 0 { "✓" } else { "✗" });
            if failed > 0 {
                if let Some(c) = ce {
                    let sig = Signature::new();
                    violations.push((
                        op,
                        p,
                        format!(
                            "T = {}   T2 = {}   P = {}   Q = {}",
                            render(&c.inputs.0, &sig),
                            render(&c.inputs.1, &sig),
                            render(&c.inputs.2, &sig),
                            render(&c.inputs.3, &sig)
                        ),
                    ));
                }
            }
        }
        println!();
    }

    println!();
    println!("reading guide:");
    println!("  • R1/U1 (success), R3/U3, R4/U4 hold for every model-based operator.");
    println!("  • R2 (vacuity) separates revision (Borgida/Satoh/Dalal/Weber: ✓)");
    println!("    from update (Winslett/Forbus: ✗) — the paper's office example.");
    println!("  • U8 (disjunction distribution) holds for the pointwise operators");
    println!("    and fails for the global ones — update commutes with case splits,");
    println!("    global minimisation does not.");
    println!();
    if violations.is_empty() {
        println!("no violations found (unexpected — raise the sample count)");
    } else {
        println!("first counterexample per violated cell:");
        for (op, p, ce) in violations.iter().take(12) {
            println!("  {} / {:?}: {}", op.name(), p, ce);
        }
        if violations.len() > 12 {
            println!("  … and {} more", violations.len() - 12);
        }
    }
}
