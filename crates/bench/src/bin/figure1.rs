//! Regenerates **Figure 1** of the paper: the containment lattice
//! among the model sets selected by the six model-based operators.
//!
//! Sweeps random `(T, P)` instances (both the consistent and the
//! inconsistent regime), accumulates the observed containment matrix,
//! and prints the lattice with the empirically confirmed edges.
//!
//! ```text
//! cargo run --release -p revkb-bench --bin figure1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb_instances::random_formula;
use revkb_revision::{containment_matrix, ModelBasedOp, FIGURE1_EDGES};

fn main() {
    let mut rng = StdRng::seed_from_u64(0xF16);
    let trials = 2000usize;
    let mut always = [[true; 6]; 6];
    let mut sometimes_strict = [[false; 6]; 6];
    let mut used = 0usize;
    let mut inconsistent_cases = 0usize;

    for _ in 0..trials {
        let t = random_formula(&mut rng, 3, 5, 0);
        let p = random_formula(&mut rng, 3, 5, 0);
        if !revkb_sat::satisfiable(&t) || !revkb_sat::satisfiable(&p) {
            continue;
        }
        used += 1;
        if !revkb_sat::satisfiable(&t.clone().and(p.clone())) {
            inconsistent_cases += 1;
        }
        let m = containment_matrix(&t, &p);
        let sets = revkb_revision::containment::all_operator_models(&t, &p);
        for i in 0..6 {
            for j in 0..6 {
                always[i][j] &= m[i][j];
                if m[i][j] && sets[i].1.len() < sets[j].1.len() {
                    sometimes_strict[i][j] = true;
                }
            }
        }
    }

    println!("== Figure 1: operator containment (observed over {used} instances, {inconsistent_cases} with T∧P inconsistent) ==");
    println!();
    print!("{:<10}", "⊆");
    for op in ModelBasedOp::ALL {
        print!("{:>10}", op.name());
    }
    println!();
    for (i, a) in ModelBasedOp::ALL.iter().enumerate() {
        print!("{:<10}", a.name());
        for j in 0..6 {
            let mark = if always[i][j] {
                if sometimes_strict[i][j] {
                    "⊊∪⊆"
                } else {
                    "⊆"
                }
            } else {
                "—"
            };
            print!("{mark:>10}");
        }
        println!();
    }
    println!();

    println!("paper's lattice edges, empirically:");
    let index = |op: ModelBasedOp| ModelBasedOp::ALL.iter().position(|&o| o == op).unwrap();
    let mut all_ok = true;
    for &(sub, sup) in &FIGURE1_EDGES {
        let ok = always[index(sub)][index(sup)];
        all_ok &= ok;
        println!(
            "  M(T*{:<8}) ⊆ M(T*{:<8})  {}",
            sub.name(),
            sup.name(),
            if ok {
                "confirmed on every instance"
            } else {
                "VIOLATED"
            }
        );
    }
    println!();
    println!(
        "figure 1 reproduction: {}",
        if all_ok { "PASS" } else { "FAIL" }
    );

    // The derived rendering of the lattice (Dalal at the bottom).
    println!();
    println!("      Winslett      Borgida       Weber");
    println!("          ▲  ▲       ▲   ▲          ▲");
    println!("          │   ╲     ╱    │          │");
    println!("        Forbus     Satoh ───────────┘");
    println!("            ▲        ▲");
    println!("             ╲      ╱");
    println!("              Dalal");
}
