//! A deliberately tiny JSON emitter.
//!
//! The workspace builds fully offline, so the report binaries cannot
//! pull in serde; this module covers exactly what [`crate::TableReport`]
//! needs: objects, arrays, strings (with escaping), numbers, booleans,
//! and pre-rendered raw fragments (for `SolverStats::to_json`).

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number, rendered via `f64`'s shortest round-trip
    /// `Display`; non-finite values render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered object.
    Object(Vec<(String, Value)>),
    /// An already-rendered JSON fragment, emitted verbatim.
    Raw(String),
}

impl Value {
    /// A string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// An array value from an iterator.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// An array of numbers.
    pub fn numbers(xs: &[f64]) -> Value {
        Value::Array(xs.iter().map(|&x| Value::Number(x)).collect())
    }

    /// An object value from `(key, value)` pairs.
    pub fn object<'a>(pairs: impl IntoIterator<Item = (&'a str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(s, out),
            Value::Raw(s) => out.push_str(s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Append `s` as a JSON string literal (quotes included).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let v = Value::string("a\"b\\c\nd\u{1}");
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn renders_nested() {
        let v = Value::object([
            ("n", Value::Number(1.5)),
            ("ok", Value::Bool(true)),
            ("xs", Value::array([Value::Number(1.0), Value::Null])),
            ("raw", Value::Raw("{\"inner\":2}".into())),
            ("empty", Value::Array(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"n\": 1.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"raw\": {\"inner\":2}"));
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Value::Number(f64::NAN).pretty(), "null\n");
        assert_eq!(Value::Number(f64::INFINITY).pretty(), "null\n");
    }
}
