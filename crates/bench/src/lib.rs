//! # revkb-bench
//!
//! Shared measurement machinery for the table-generator binaries
//! (`table1`, `table2`, `figure1`, `section7`) and the Criterion
//! benches. The binaries regenerate the paper's Table 1, Table 2 and
//! Figure 1; the Criterion benches time the substrates and
//! constructions.
//!
//! Reports are serialised with the hand-rolled emitter in [`json`] —
//! the build is fully offline, so there is deliberately no serde
//! dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use revkb_logic::Formula;
use revkb_revision::Engine;
use revkb_sat::{PoolConfig, PoolStats, SessionPool};
use std::time::Instant;

pub mod json;
pub mod load;
pub mod suite;

/// A measured size series: representation size as a function of the
/// scaling parameter.
#[derive(Debug, Clone)]
pub struct Series {
    /// What was measured.
    pub label: String,
    /// Scaling parameter values (`n` or `m`).
    pub xs: Vec<f64>,
    /// Measured sizes.
    pub ys: Vec<f64>,
}

/// Growth classification of a size series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Growth {
    /// Fits `y ≈ a·x^b` better: polynomial with the fitted degree.
    Polynomial {
        /// Fitted exponent `b`.
        degree: f64,
    },
    /// Fits `y ≈ a·base^x` better: exponential with the fitted base.
    Exponential {
        /// Fitted base.
        base: f64,
    },
}

impl std::fmt::Display for Growth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Growth::Polynomial { degree } => write!(f, "polynomial (≈ n^{degree:.1})"),
            Growth::Exponential { base } => write!(f, "EXPONENTIAL (≈ {base:.2}^n)"),
        }
    }
}

/// Least-squares fit of `y = a + b·x`; returns `(a, b, sse)`.
fn linfit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let b = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let a = (sy - b * sx) / n;
    let sse: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (a + b * x);
            e * e
        })
        .sum();
    (a, b, sse)
}

/// Classify a positive, growing series as polynomial or exponential by
/// comparing the least-squares fit of `log y` against `log x`
/// (polynomial model) and against `x` (exponential model).
pub fn classify_growth(xs: &[f64], ys: &[f64]) -> Growth {
    assert!(xs.len() >= 3, "need at least 3 points to classify");
    let logy: Vec<f64> = ys.iter().map(|&y| y.max(1.0).ln()).collect();
    let logx: Vec<f64> = xs.iter().map(|&x| x.max(1.0).ln()).collect();
    let (_, poly_deg, poly_sse) = linfit(&logx, &logy);
    let (_, exp_slope, exp_sse) = linfit(xs, &logy);
    // Prefer the model with the smaller residual; an exponential fit
    // with base ≈ 1 is really polynomial-or-flat.
    if exp_sse < poly_sse && exp_slope.exp() > 1.25 {
        Growth::Exponential {
            base: exp_slope.exp(),
        }
    } else {
        Growth::Polynomial { degree: poly_deg }
    }
}

impl Series {
    /// New series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Append a data point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Classify the growth of the series.
    pub fn growth(&self) -> Growth {
        classify_growth(&self.xs, &self.ys)
    }

    /// Render `x→y` pairs compactly.
    pub fn render(&self) -> String {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(x, y)| format!("{x:.0}→{y:.0}"))
            .collect::<Vec<_>>()
            .join("  ")
    }

    fn to_json(&self) -> json::Value {
        json::Value::object([
            ("label", json::Value::string(&self.label)),
            ("xs", json::Value::numbers(&self.xs)),
            ("ys", json::Value::numbers(&self.ys)),
        ])
    }
}

/// One cell of a compactability table.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The paper's verdict for the cell ("YES"/"NO").
    pub paper_claim: &'static str,
    /// The theorem or result backing the claim.
    pub reference: &'static str,
    /// What this run measured.
    pub series: Vec<Series>,
    /// Whether the measurement is consistent with the claim.
    pub consistent: bool,
    /// One-line explanation of the evidence.
    pub evidence: String,
}

impl Cell {
    fn to_json(&self) -> json::Value {
        json::Value::object([
            ("paper_claim", json::Value::string(self.paper_claim)),
            ("reference", json::Value::string(self.reference)),
            (
                "series",
                json::Value::array(self.series.iter().map(|s| s.to_json())),
            ),
            ("consistent", json::Value::Bool(self.consistent)),
            ("evidence", json::Value::string(&self.evidence)),
        ])
    }
}

/// One operator's batch-query workload, answered twice through the
/// same [`SessionPool`]: once sequentially, once sharded across the
/// workers. Captures the head-to-head wall times and the pool's
/// merged statistics.
#[derive(Debug, Clone)]
pub struct BatchWorkload {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Wall time of the sequential pass, in microseconds.
    pub sequential_wall_micros: u64,
    /// Wall time of the parallel pass, in microseconds.
    pub parallel_wall_micros: u64,
    /// Whether the two passes returned bit-identical answer vectors
    /// (they must — a `false` here is a correctness bug, and the
    /// report says so rather than hiding it).
    pub answers_match: bool,
    /// The pool's statistics after both passes (per-worker blocks,
    /// merged counters, CPU-vs-wall time accounting).
    pub pool: PoolStats,
}

/// Run `queries` through a fresh pool over `base` twice — a
/// sequential pass and a parallel pass — and capture the comparison.
///
/// The parallel pass uses a forced-parallel threshold so the
/// comparison is honest even for small sweeps; worker count comes
/// from `threads` (pass [`revkb_sat::default_threads`] for the
/// `REVKB_THREADS`-aware default).
pub fn run_batch_workload(base: &Formula, queries: &[Formula], threads: usize) -> BatchWorkload {
    let mut pool = SessionPool::with_config(
        base,
        PoolConfig {
            threads,
            sequential_threshold: 0,
        },
    );
    let start = Instant::now();
    let sequential = pool.entails_batch(queries);
    let sequential_wall_micros = start.elapsed().as_micros() as u64;
    let start = Instant::now();
    let parallel = pool.par_entails_batch(queries);
    let parallel_wall_micros = start.elapsed().as_micros() as u64;
    BatchWorkload {
        threads: pool.threads(),
        queries: queries.len(),
        sequential_wall_micros,
        parallel_wall_micros,
        answers_match: sequential == parallel,
        pool: pool.stats(),
    }
}

impl BatchWorkload {
    fn to_json(&self) -> json::Value {
        json::Value::object([
            ("threads", json::Value::Number(self.threads as f64)),
            ("queries", json::Value::Number(self.queries as f64)),
            (
                "sequential_wall_micros",
                json::Value::Number(self.sequential_wall_micros as f64),
            ),
            (
                "parallel_wall_micros",
                json::Value::Number(self.parallel_wall_micros as f64),
            ),
            ("answers_match", json::Value::Bool(self.answers_match)),
            ("pool_stats", json::Value::Raw(self.pool.to_json())),
        ])
    }
}

/// One engine's workload, measured through trait-object dispatch: the
/// same queries answered one at a time, as a batch, and through the
/// parallel path, with the three answer vectors cross-checked.
#[derive(Debug, Clone)]
pub struct EngineWorkload {
    /// `Engine::describe()` of the engine under test.
    pub engine: String,
    /// Queries in the workload.
    pub queries: usize,
    /// Wall time of the one-at-a-time pass, in microseconds.
    pub single_wall_micros: u64,
    /// Wall time of the batch pass, in microseconds.
    pub batch_wall_micros: u64,
    /// Wall time of the parallel-batch pass, in microseconds.
    pub parallel_wall_micros: u64,
    /// Whether all three passes agreed bit-for-bit (a `false` is a
    /// correctness bug, and the report says so rather than hiding it).
    pub answers_match: bool,
}

/// Run `queries` through any [`Engine`] three ways — single calls,
/// one batch, one parallel batch — and capture the comparison. This is
/// the generic analogue of [`run_batch_workload`]: it exercises the
/// exact dispatch path the `revkb-server` registry uses
/// (`Box<dyn Engine + Send>`), so a divergence between trait-object
/// and concrete behaviour shows up here first.
pub fn run_engine_workload(engine: &mut dyn Engine, queries: &[Formula]) -> EngineWorkload {
    let start = Instant::now();
    let single: Vec<bool> = queries.iter().map(|q| engine.entails(q)).collect();
    let single_wall_micros = start.elapsed().as_micros() as u64;
    let start = Instant::now();
    let batch = engine.entails_batch(queries);
    let batch_wall_micros = start.elapsed().as_micros() as u64;
    let start = Instant::now();
    let parallel = engine
        .par_entails_batch(queries)
        .expect("parallel batch failed after batch succeeded");
    let parallel_wall_micros = start.elapsed().as_micros() as u64;
    EngineWorkload {
        engine: engine.describe(),
        queries: queries.len(),
        single_wall_micros,
        batch_wall_micros,
        parallel_wall_micros,
        answers_match: single == batch && batch == parallel,
    }
}

impl EngineWorkload {
    /// Render as a JSON object.
    pub fn to_json(&self) -> json::Value {
        json::Value::object([
            ("engine", json::Value::string(&self.engine)),
            ("queries", json::Value::Number(self.queries as f64)),
            (
                "single_wall_micros",
                json::Value::Number(self.single_wall_micros as f64),
            ),
            (
                "batch_wall_micros",
                json::Value::Number(self.batch_wall_micros as f64),
            ),
            (
                "parallel_wall_micros",
                json::Value::Number(self.parallel_wall_micros as f64),
            ),
            ("answers_match", json::Value::Bool(self.answers_match)),
        ])
    }
}

/// Schema version of the table reports. Bumped to 2 when the
/// `schema_version`/`run_meta` block and the optional `telemetry`
/// section were added.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Run metadata stamped into every report: enough to know how the
/// numbers were produced without reading shell history.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Worker threads the batch pools default to (`REVKB_THREADS` /
    /// available parallelism).
    pub threads: usize,
    /// Telemetry mode of the run (`REVKB_TRACE`).
    pub trace_mode: &'static str,
    /// `git describe --always --dirty` of the working tree, when a git
    /// binary and repository are reachable.
    pub git_describe: Option<String>,
}

impl RunMeta {
    /// Capture the current process environment.
    pub fn capture() -> Self {
        RunMeta {
            threads: revkb_sat::default_threads(),
            trace_mode: revkb_obs::mode().name(),
            git_describe: git_describe(),
        }
    }

    fn to_json(&self) -> json::Value {
        json::Value::object([
            ("threads", json::Value::Number(self.threads as f64)),
            ("trace_mode", json::Value::string(self.trace_mode)),
            (
                "git_describe",
                match &self.git_describe {
                    Some(d) => json::Value::string(d),
                    None => json::Value::Null,
                },
            ),
        ])
    }
}

fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

/// Drain the telemetry registry into the report's `telemetry` section,
/// writing the Chrome trace file first when the mode asks for one.
/// Returns `None` (no section, no file) when telemetry is off.
pub fn drain_telemetry() -> Option<String> {
    if !revkb_obs::enabled() {
        return None;
    }
    let snap = revkb_obs::drain();
    if snap.mode == revkb_obs::TraceMode::Chrome {
        let path = revkb_obs::trace_file_path();
        match revkb_obs::write_chrome_trace(&path, &snap) {
            Ok(()) => eprintln!("chrome trace written to {}", path.display()),
            Err(e) => eprintln!("chrome trace write failed for {}: {e}", path.display()),
        }
    }
    Some(snap.to_json())
}

/// A whole table for serialisation.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table name.
    pub table: String,
    /// Run metadata (threads, trace mode, git describe).
    pub meta: RunMeta,
    /// Row label → column label → cell.
    pub rows: Vec<(String, Vec<(String, Cell)>)>,
    /// Per-operator batch-query workloads: label → sequential vs
    /// parallel comparison over one sharded session pool.
    pub workloads: Vec<(String, BatchWorkload)>,
    /// Drained telemetry snapshot (pre-rendered JSON), present only
    /// when the run had `REVKB_TRACE` enabled — so `off` runs stay
    /// byte-compatible with earlier reports apart from the
    /// schema/metadata fields.
    pub telemetry: Option<String>,
}

impl TableReport {
    /// Render the report as a JSON string.
    pub fn to_json(&self) -> String {
        let rows = json::Value::array(self.rows.iter().map(|(label, cells)| {
            json::Value::Array(vec![
                json::Value::string(label),
                json::Value::array(cells.iter().map(|(col, cell)| {
                    json::Value::Array(vec![json::Value::string(col), cell.to_json()])
                })),
            ])
        }));
        let workloads = json::Value::array(self.workloads.iter().map(|(label, workload)| {
            let json::Value::Object(mut fields) = workload.to_json() else {
                unreachable!("BatchWorkload::to_json returns an object");
            };
            fields.insert(0, ("operator".into(), json::Value::string(label)));
            json::Value::Object(fields)
        }));
        let mut pairs = vec![
            ("table", json::Value::string(&self.table)),
            (
                "schema_version",
                json::Value::Number(REPORT_SCHEMA_VERSION as f64),
            ),
            ("run_meta", self.meta.to_json()),
            ("rows", rows),
            ("query_workloads", workloads),
        ];
        if let Some(telemetry) = &self.telemetry {
            pairs.push(("telemetry", json::Value::Raw(telemetry.clone())));
        }
        json::Value::object(pairs).pretty()
    }

    /// Write the report as JSON next to the repo's bench outputs.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Print a paper-style YES/NO grid.
pub fn print_grid(title: &str, columns: &[&str], rows: &[(String, Vec<(String, Cell)>)]) {
    println!("== {title} ==");
    print!("{:<22}", "Formalism");
    for c in columns {
        print!("{c:>26}");
    }
    println!();
    println!("{}", "-".repeat(22 + 26 * columns.len()));
    for (row_label, cells) in rows {
        print!("{row_label:<22}");
        for (_, cell) in cells {
            let mark = if cell.consistent { "" } else { " (!)" };
            print!(
                "{:>26}",
                format!("{}{} {}", cell.paper_claim, mark, cell.reference)
            );
        }
        println!();
    }
    println!();
}

/// Print the per-operator sequential-vs-parallel workload comparison.
pub fn print_workloads(workloads: &[(String, BatchWorkload)]) {
    println!("== Batch query workloads (sharded session pool) ==");
    for (label, w) in workloads {
        let merged = w.pool.merged();
        let verdict = if w.answers_match {
            "identical"
        } else {
            "DIVERGED (!)"
        };
        println!(
            "{label:<22} threads={} queries={} seq_us={} par_us={} answers={} \
             cache_hits={} conflicts={} decisions={} cpu_us={} wall_us={}",
            w.threads,
            w.queries,
            w.sequential_wall_micros,
            w.parallel_wall_micros,
            verdict,
            merged.cache_hits,
            merged.conflicts,
            merged.decisions,
            w.pool.cpu_time_total_micros(),
            w.pool.wall_time_micros,
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_polynomial() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let quad: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        match classify_growth(&xs, &quad) {
            Growth::Polynomial { degree } => assert!((degree - 2.0).abs() < 0.2),
            g => panic!("misclassified quadratic as {g:?}"),
        }
        let lin: Vec<f64> = xs.iter().map(|x| 7.0 * x + 2.0).collect();
        assert!(matches!(
            classify_growth(&xs, &lin),
            Growth::Polynomial { .. }
        ));
    }

    #[test]
    fn classifies_exponential() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let exp: Vec<f64> = xs.iter().map(|x| 2f64.powf(*x)).collect();
        match classify_growth(&xs, &exp) {
            Growth::Exponential { base } => assert!((base - 2.0).abs() < 0.2),
            g => panic!("misclassified exponential as {g:?}"),
        }
    }

    #[test]
    fn constant_series_is_polynomial() {
        let xs: Vec<f64> = (1..=6).map(|x| x as f64).collect();
        let ys = vec![5.0; 6];
        assert!(matches!(
            classify_growth(&xs, &ys),
            Growth::Polynomial { .. }
        ));
    }

    #[test]
    fn series_round_trip() {
        let mut s = Series::new("test");
        for i in 1..=5 {
            s.push(i as f64, (i * i) as f64);
        }
        assert!(matches!(s.growth(), Growth::Polynomial { .. }));
        assert!(s.render().contains("5→25"));
    }

    #[test]
    fn engine_workload_through_trait_object() {
        use revkb_logic::Var;
        use revkb_revision::{ModelBasedOp, RevisedKb};
        let v = |i: u32| Formula::var(Var(i));
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        let mut engine: Box<dyn Engine> =
            Box::new(RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap());
        let queries = vec![v(2), v(0).or(v(1)), v(0).and(v(1)), v(2).not()];
        let workload = run_engine_workload(engine.as_mut(), &queries);
        assert!(workload.answers_match);
        assert_eq!(workload.queries, 4);
        assert!(workload.engine.contains("Dalal"));
        let j = format!("{:?}", workload.to_json());
        assert!(j.contains("answers_match"));
    }

    #[test]
    fn report_json_shape() {
        use revkb_logic::Var;
        let base = Formula::var(Var(0)).and(Formula::var(Var(1)));
        let queries = vec![Formula::var(Var(0)), Formula::var(Var(1)).not()];
        let workload = run_batch_workload(&base, &queries, 2);
        assert!(workload.answers_match);
        assert_eq!(workload.threads, 2);
        assert_eq!(workload.queries, 2);
        let report = TableReport {
            table: "t".into(),
            meta: RunMeta::capture(),
            telemetry: None,
            rows: vec![(
                "Horn".into(),
                vec![(
                    "revision".into(),
                    Cell {
                        paper_claim: "NO",
                        reference: "Thm 4.2",
                        series: vec![Series {
                            label: "s".into(),
                            xs: vec![1.0, 2.0],
                            ys: vec![3.0, 4.5],
                        }],
                        consistent: true,
                        evidence: "he said \"so\"".into(),
                    },
                )],
            )],
            workloads: vec![("revision".into(), workload)],
        };
        let j = report.to_json();
        assert!(j.contains("\"table\": \"t\""));
        assert!(j.contains("\"Horn\""));
        assert!(j.contains("\"paper_claim\": \"NO\""));
        assert!(j.contains("\\\"so\\\""));
        assert!(j.contains("4.5"));
        for key in [
            "\"schema_version\": 2",
            "\"run_meta\": {",
            "\"trace_mode\":",
            "\"query_workloads\"",
            "\"operator\": \"revision\"",
            "\"threads\": 2",
            "\"sequential_wall_micros\"",
            "\"parallel_wall_micros\"",
            "\"answers_match\": true",
            "\"pool_stats\": {",
            "\"cpu_time_total_micros\"",
            "\"wall_time_micros\"",
            "\"per_worker\":[{",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
