//! Open-loop load generation against a real `revkb-server` process.
//!
//! Unlike the in-process suite benches, these run the server as a
//! **separate OS process** (found next to the bench binary) serving
//! the epoll event loop, so file-descriptor budgets and scheduling are
//! the production ones: the bench process holds its ten thousand
//! client sockets and the server process holds its ten thousand
//! accepted sockets, each under its own `RLIMIT_NOFILE`.
//!
//! Three benchmarks come out of one server run:
//!
//! - `server.load.open_loop` — an open-loop generator: requests are
//!   issued on a fixed schedule (`REVKB_BENCH_QPS`) whether or not
//!   earlier responses have arrived, the honest way to measure tail
//!   latency (a closed loop self-throttles and hides queueing). The
//!   median is the p50 request latency; p95/p99/achieved QPS ride in
//!   `extra`, along with the number of concurrently open connections
//!   (`REVKB_BENCH_CONNS`, default 10 000) held open for the duration.
//! - `server.load.pipeline` — one connection answering a fixed batch
//!   of queries pipelined `PIPELINE_DEPTH` requests deep versus one at
//!   a time; the speedup is the event loop's pipelining win.
//! - `server.load.http` — the same query through the HTTP/1.1 gateway
//!   (`POST /v1/query` over one keep-alive connection).
//!
//! When the sibling `revkb-server` binary is missing (e.g. `cargo run
//! -p revkb-bench` without building the server crate's binaries) the
//! load generator falls back to an in-process event loop and says so
//! in the `transport` extra; connection counts are then halved so the
//! shared fd budget still fits.

use crate::json::Value;
use crate::suite::{BenchResult, SuiteConfig};
use revkb_server::{Json, Server, ServerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable setting the concurrent-connection count held
/// open through the open-loop phase (default 10 000).
pub const CONNS_ENV: &str = "REVKB_BENCH_CONNS";
/// Environment variable setting the open-loop target request rate
/// (default 2 000 requests/second).
pub const QPS_ENV: &str = "REVKB_BENCH_QPS";
/// Environment variable setting the open-loop duration in
/// milliseconds (default 2 000).
pub const LOAD_MS_ENV: &str = "REVKB_BENCH_LOAD_MS";

const DEFAULT_CONNS: usize = 10_000;
const DEFAULT_QPS: u64 = 2_000;
const DEFAULT_LOAD_MS: u64 = 2_000;
/// Writer threads for the open-loop phase; the schedule is split
/// evenly across them so one slow response never stalls the clock.
const LOAD_WRITERS: usize = 4;
/// Requests in flight per connection for the pipelining comparison.
const PIPELINE_DEPTH: usize = 32;
/// Queries per pipelining/HTTP measurement pass.
const PIPELINE_REQUESTS: usize = 512;
const HTTP_REQUESTS: usize = 256;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The knobs of one load run, resolved from the environment.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Connections held open through the open-loop phase.
    pub connections: usize,
    /// Target request rate, requests per second.
    pub qps: u64,
    /// Open-loop duration, milliseconds.
    pub duration_ms: u64,
}

impl LoadConfig {
    /// Defaults overridden by `REVKB_BENCH_CONNS` / `REVKB_BENCH_QPS`
    /// / `REVKB_BENCH_LOAD_MS`.
    pub fn from_env() -> Self {
        LoadConfig {
            connections: env_usize(CONNS_ENV, DEFAULT_CONNS),
            qps: env_u64(QPS_ENV, DEFAULT_QPS).max(1),
            duration_ms: env_u64(LOAD_MS_ENV, DEFAULT_LOAD_MS).max(100),
        }
    }
}

/// The server under load: a spawned `revkb-server` process when the
/// binary is reachable, an in-process event loop otherwise.
enum Target {
    Child(std::process::Child),
    InProcess(std::thread::JoinHandle<()>),
}

struct UnderTest {
    addr: SocketAddr,
    target: Target,
    transport: &'static str,
}

/// Look for the `revkb-server` binary next to the running executable
/// (and one directory up, for test binaries living in `deps/`).
fn sibling_server_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for base in [Some(dir), dir.parent()].into_iter().flatten() {
        let candidate = base.join("revkb-server");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

fn start_server() -> UnderTest {
    if let Some(path) = sibling_server_binary() {
        match spawn_child(&path) {
            Ok(under_test) => return under_test,
            Err(e) => eprintln!(
                "revkb-bench: cannot spawn {} ({e}); falling back to in-process server",
                path.display()
            ),
        }
    }
    let server = Server::new(ServerConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let thread = std::thread::spawn(move || {
        let _ = server.serve_event_loop(listener);
    });
    UnderTest {
        addr,
        target: Target::InProcess(thread),
        transport: "in_process",
    }
}

fn spawn_child(path: &std::path::Path) -> std::io::Result<UnderTest> {
    let mut child = std::process::Command::new(path)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()?;
    // The server prints `listening HOST:PORT` once bound.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner)?;
    let addr: SocketAddr = banner
        .trim()
        .strip_prefix("listening ")
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| {
            let _ = child.kill();
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected server banner {banner:?}"),
            )
        })?;
    Ok(UnderTest {
        addr,
        target: Target::Child(child),
        transport: "child_process",
    })
}

impl UnderTest {
    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(self.addr).expect("connect loopback");
        stream.set_nodelay(true).expect("set TCP_NODELAY");
        stream
    }

    fn stop(self) {
        let mut conn = self.connect();
        conn.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let _ = conn.write_all(b"{\"cmd\":\"shutdown\"}\n");
        let mut sink = String::new();
        let _ = BufReader::new(&conn).read_line(&mut sink);
        match self.target {
            Target::Child(mut child) => {
                // The event loop drains and exits after `shutdown`;
                // reap rather than kill so the exit is the graceful
                // path, with a deadline in case it wedges.
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            Target::InProcess(thread) => {
                let _ = thread.join();
            }
        }
    }
}

/// Read one newline-terminated response without a per-connection
/// `BufReader` (ten thousand 8 KiB buffers would be 80 MiB of heap;
/// responses are a single short line, so byte-wise reads never loop).
fn read_response_line(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> String {
    scratch.clear();
    let mut byte = [0u8; 256];
    loop {
        let n = stream.read(&mut byte).expect("loopback read");
        assert!(n > 0, "server closed the connection mid-response");
        scratch.extend_from_slice(&byte[..n]);
        if scratch.last() == Some(&b'\n') {
            break;
        }
    }
    String::from_utf8_lossy(scratch).trim().to_string()
}

fn assert_ok(response: &str, context: &str) -> Json {
    let json = Json::parse(response).expect("server response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{context} failed: {response}"
    );
    json
}

/// Open `want` connections, prove each one answers a `ping`, and keep
/// them all open. Verification goes in waves so the accept queue and
/// the response reads overlap; a failed `connect` stops the climb and
/// the achieved count is reported instead of panicking (CI runners
/// cap fds differently).
fn open_idle_connections(under_test: &UnderTest, want: usize) -> Vec<TcpStream> {
    let mut conns: Vec<TcpStream> = Vec::with_capacity(want);
    let mut scratch = Vec::with_capacity(256);
    let wave = 512;
    while conns.len() < want {
        let start = conns.len();
        let end = (start + wave).min(want);
        for _ in start..end {
            match TcpStream::connect(under_test.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("set read timeout");
                    conns.push(stream);
                }
                Err(e) => {
                    eprintln!(
                        "revkb-bench: connection climb stopped at {} of {want}: {e}",
                        conns.len()
                    );
                    return conns;
                }
            }
        }
        // One pipelined ping per new connection; reading the wave's
        // responses before the next wave keeps server-side write
        // buffers bounded.
        for conn in &mut conns[start..] {
            conn.write_all(b"{\"cmd\":\"ping\"}\n").expect("ping write");
        }
        for conn in &mut conns[start..] {
            let response = read_response_line(conn, &mut scratch);
            assert_ok(&response, "idle-connection ping");
        }
    }
    conns
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The open-loop phase: `LOAD_WRITERS` threads each own one
/// connection and an even share of the schedule. Sends happen on the
/// clock; a reader thread per connection matches responses back to
/// send timestamps by the echoed `id`, so pipelined out-of-order
/// completions are measured correctly.
fn open_loop(under_test: &UnderTest, cfg: &LoadConfig) -> (Vec<f64>, u64, u64, f64) {
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sent = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut writers = Vec::new();
    for w in 0..LOAD_WRITERS {
        let mut stream = under_test.connect();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        let reader_stream = stream.try_clone().expect("clone stream");
        let rate = cfg.qps as f64 / LOAD_WRITERS as f64;
        let interval = Duration::from_secs_f64(1.0 / rate);
        let total = ((cfg.duration_ms as f64 / 1000.0) * rate).ceil() as u64;
        let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
        let latencies = Arc::clone(&latencies);
        let sent = Arc::clone(&sent);
        let errors = Arc::clone(&errors);
        let writer_errors = Arc::clone(&errors);
        let reader_map = Arc::clone(&in_flight);
        let reader = std::thread::spawn(move || {
            let mut reader = BufReader::new(reader_stream);
            let mut line = String::new();
            for _ in 0..total {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                let Ok(json) = Json::parse(line.trim()) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                if json.get("ok").and_then(Json::as_bool) != Some(true) {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                let Some(id) = json.get("id").and_then(Json::as_u64) else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                if let Some(at) = reader_map.lock().expect("in-flight map").remove(&id) {
                    let micros = at.elapsed().as_micros() as f64;
                    latencies.lock().expect("latency vec").push(micros);
                }
            }
        });
        let writer = std::thread::spawn(move || {
            let begin = Instant::now();
            for k in 0..total {
                // Open loop: wait for the schedule, never for the
                // server. Falling behind schedule is allowed (and
                // measured as latency); skipping sends is not.
                let due = begin + interval.mul_f64(k as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let id = (w as u64) << 32 | k;
                let line =
                    format!("{{\"id\":{id},\"cmd\":\"query\",\"kb\":\"load\",\"q\":\"a\"}}\n");
                in_flight
                    .lock()
                    .expect("in-flight map")
                    .insert(id, Instant::now());
                if stream.write_all(line.as_bytes()).is_err() {
                    writer_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                sent.fetch_add(1, Ordering::Relaxed);
            }
            reader
        });
        writers.push(writer);
    }
    for writer in writers {
        let reader = writer.join().expect("writer thread");
        let _ = reader.join();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let mut lat = Arc::try_unwrap(latencies)
        .expect("threads joined")
        .into_inner()
        .expect("latency vec");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let sent = sent.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let achieved_qps = lat.len() as f64 / elapsed;
    (lat, sent, errors, achieved_qps)
}

/// `server.load.pipeline` — the same queries answered one at a time
/// and `PIPELINE_DEPTH` deep on one connection; reports per-request
/// latency for the pipelined pass and the sequential/pipelined ratio.
fn pipeline_bench(under_test: &UnderTest, cfg: &SuiteConfig) -> BenchResult {
    let mut stream = under_test.connect();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let request = b"{\"cmd\":\"query\",\"kb\":\"load\",\"q\":\"a\"}\n";
    let mut line = String::new();
    let read_one = |reader: &mut BufReader<TcpStream>, line: &mut String| {
        line.clear();
        reader.read_line(line).expect("loopback read");
        assert_ok(line.trim(), "pipeline query");
    };

    // Sequential: write, wait, repeat.
    let start = Instant::now();
    for _ in 0..PIPELINE_REQUESTS {
        stream.write_all(request).expect("loopback write");
        read_one(&mut reader, &mut line);
    }
    let sequential_us = start.elapsed().as_micros() as f64;

    // Pipelined: bursts of PIPELINE_DEPTH requests in one write, then
    // drain the burst.
    let burst = request.repeat(PIPELINE_DEPTH);
    let start = Instant::now();
    for _ in 0..PIPELINE_REQUESTS / PIPELINE_DEPTH {
        stream.write_all(&burst).expect("loopback write");
        for _ in 0..PIPELINE_DEPTH {
            read_one(&mut reader, &mut line);
        }
    }
    let pipelined_us = start.elapsed().as_micros() as f64;

    let per_request = pipelined_us / PIPELINE_REQUESTS as f64;
    let sequential_per_request = sequential_us / PIPELINE_REQUESTS as f64;
    let mut r = BenchResult {
        name: "server.load.pipeline".into(),
        unit: "micros",
        median: per_request,
        trials: vec![per_request],
        tolerance_pct: cfg.tolerance_for("server.load.pipeline"),
        extra: vec![
            ("depth", Value::Number(PIPELINE_DEPTH as f64)),
            ("requests", Value::Number(PIPELINE_REQUESTS as f64)),
            (
                "sequential_per_request_us",
                Value::Number(sequential_per_request),
            ),
        ],
    };
    if per_request > 0.0 {
        r.extra.push((
            "speedup_vs_sequential",
            Value::Number(sequential_per_request / per_request),
        ));
    }
    r
}

/// `server.load.http` — `POST /v1/query` over one keep-alive gateway
/// connection; the envelope on the wire is the same as the line
/// protocol's, so correctness is asserted per response.
fn http_bench(under_test: &UnderTest, cfg: &SuiteConfig) -> BenchResult {
    let mut stream = under_test.connect();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let body = r#"{"kb":"load","q":"a"}"#;
    let request = format!(
        "POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut latencies = Vec::with_capacity(HTTP_REQUESTS);
    for i in 0..HTTP_REQUESTS {
        let start = Instant::now();
        stream.write_all(request.as_bytes()).expect("http write");
        let envelope = read_http_response(&mut reader);
        latencies.push(start.elapsed().as_micros() as f64);
        if i == 0 {
            assert_ok(envelope.trim(), "gateway query");
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let median = percentile(&latencies, 50.0);
    BenchResult {
        name: "server.load.http".into(),
        unit: "micros",
        median,
        trials: vec![median],
        tolerance_pct: cfg.tolerance_for("server.load.http"),
        extra: vec![
            ("requests", Value::Number(HTTP_REQUESTS as f64)),
            ("p95", Value::Number(percentile(&latencies, 95.0))),
            ("p99", Value::Number(percentile(&latencies, 99.0))),
            ("route", Value::string("/v1/query")),
        ],
    }
}

/// Read one `HTTP/1.1 200` response (status line, headers,
/// `Content-Length` body) and return the body.
fn read_http_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("http status line");
    assert!(
        line.starts_with("HTTP/1.1 200"),
        "gateway answered {}",
        line.trim()
    );
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("http header");
        let header = line.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(|v| v.trim().to_string())
        {
            content_length = v.parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("http body");
    String::from_utf8(body).expect("utf-8 body")
}

/// Run the whole load-generation phase: spawn (or embed) the server,
/// hold `connections` sockets open, drive the open-loop schedule, and
/// measure pipelining and the HTTP gateway on the side.
pub fn load_benches(cfg: &SuiteConfig) -> Vec<BenchResult> {
    let load_cfg = LoadConfig::from_env();
    // Raising the fd ceiling is a no-op where the limit is already
    // high; on default GitHub runners it lifts the 1024 soft limit.
    let limit = revkb_server::event_loop::raise_nofile(u64::MAX);
    let under_test = start_server();
    let mut want = load_cfg.connections;
    if under_test.transport == "in_process" {
        // One process holds both ends: half the fd budget each, with
        // headroom for the workspace's other open files.
        let budget = (limit.saturating_sub(256) / 2) as usize;
        want = want.min(budget);
    }

    // The workload KB: compiled once, queried by every phase.
    let mut setup = under_test.connect();
    let mut scratch = Vec::with_capacity(256);
    setup
        .write_all(b"{\"cmd\":\"load\",\"kb\":\"load\",\"t\":\"a & b; b -> c\"}\n")
        .expect("load write");
    assert_ok(&read_response_line(&mut setup, &mut scratch), "kb load");

    let idle = open_idle_connections(&under_test, want);
    let (latencies, sent_count, errors, achieved_qps) = open_loop(&under_test, &load_cfg);
    let open_connections = idle.len() + LOAD_WRITERS + 1;

    let mut open = BenchResult {
        name: "server.load.open_loop".into(),
        unit: "micros",
        median: percentile(&latencies, 50.0),
        trials: vec![percentile(&latencies, 50.0)],
        tolerance_pct: cfg.tolerance_for("server.load.open_loop"),
        extra: vec![
            ("connections", Value::Number(open_connections as f64)),
            ("target_qps", Value::Number(load_cfg.qps as f64)),
            ("achieved_qps", Value::Number(achieved_qps)),
            ("duration_ms", Value::Number(load_cfg.duration_ms as f64)),
            ("requests_sent", Value::Number(sent_count as f64)),
            ("responses", Value::Number(latencies.len() as f64)),
            ("errors", Value::Number(errors as f64)),
            ("p95", Value::Number(percentile(&latencies, 95.0))),
            ("p99", Value::Number(percentile(&latencies, 99.0))),
            ("transport", Value::string(under_test.transport)),
            ("nofile_limit", Value::Number(limit as f64)),
        ],
    };
    if latencies.len() < sent_count as usize {
        open.extra.push((
            "lost_responses",
            Value::Number((sent_count as usize - latencies.len()) as f64),
        ));
    }

    let pipeline = pipeline_bench(&under_test, cfg);
    let http = http_bench(&under_test, cfg);

    // One machine-greppable summary line: the CI connection-count
    // smoke parses `connections=` out of this.
    println!(
        "open-loop: connections={} target_qps={} achieved_qps={:.0} p50_us={:.0} \
         p95_us={:.0} p99_us={:.0} responses={} errors={} transport={}",
        open_connections,
        load_cfg.qps,
        achieved_qps,
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
        latencies.len(),
        errors,
        under_test.transport,
    );

    drop(idle);
    under_test.stop();
    vec![open, pipeline, http]
}
