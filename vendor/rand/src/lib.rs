//! A minimal, dependency-free, offline drop-in for the subset of the
//! `rand` 0.8 API this workspace uses: [`Rng`] (`gen_range`,
//! `gen_bool`, `gen_ratio`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! The backend is xoshiro256** seeded through splitmix64 — fast,
//! deterministic, and more than adequate for workload generation and
//! property tests. It makes no cryptographic claims whatsoever.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (object-safe core trait).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Draw a uniform integer in `[0, n)` without modulo bias worth
/// caring about at these sizes (rejection sampling on the top chunk).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, compared against p.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded through splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via
    /// splitmix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..5);
            assert!(y < 5);
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn gen_ratio_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..6_000).filter(|_| rng.gen_ratio(1, 6)).count();
        assert!((600..1_400).contains(&hits), "1/6 gave {hits}/6000");
    }
}
