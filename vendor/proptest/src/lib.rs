//! A minimal, dependency-free, offline drop-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`, `#[test]` attributes and doc comments),
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` /
//! `prop_filter` / `boxed`, [`strategy::Just`], integer-range and
//! tuple strategies, [`arbitrary::any`], [`collection::vec`],
//! [`prop_oneof!`], [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assert_ne!`] / [`prop_assume!`], and
//! `ProptestConfig { cases, max_shrink_iters, .. }`.
//!
//! The engine is a real (if small) property tester:
//!
//! - **Deterministic seeding.** Each case's RNG is a pure function of
//!   the test name, the case index, and a run seed. The run seed
//!   defaults to 0 and can be overridden with the `REVKB_PROP_SEED`
//!   environment variable to explore a different corner of the input
//!   space; failures reproduce exactly under the same seed, no
//!   persistence files needed. `REVKB_PROP_CASES` overrides the
//!   per-test case count the same way.
//! - **Greedy shrinking.** Generation is a deterministic function of
//!   the RNG's draw stream, so the engine records every `u64` drawn
//!   while generating the failing case and then shrinks the *stream*:
//!   each draw is greedily replaced by smaller values (0, half,
//!   decrement) and the case re-run, keeping any mutation that still
//!   fails. Smaller draws systematically mean structurally smaller
//!   values — recursive formula strategies bottom out into leaves,
//!   ranges move toward their low end, vectors toward their minimum
//!   length — so the reported counterexample is a (locally) minimal
//!   failing input, bounded by `max_shrink_iters` re-runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case configuration, errors, the deterministic RNG, and
    //! the shrinking runner.

    /// Environment variable overriding the run seed (u64; default 0).
    pub const SEED_ENV: &str = "REVKB_PROP_SEED";

    /// Environment variable overriding every test's case count.
    pub const CASES_ENV: &str = "REVKB_PROP_CASES";

    /// The run seed: `REVKB_PROP_SEED` if set to a valid u64,
    /// otherwise 0.
    pub fn env_seed() -> u64 {
        std::env::var(SEED_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(0)
    }

    fn env_cases() -> Option<u32> {
        std::env::var(CASES_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on shrink re-runs after a failure.
        pub max_shrink_iters: u32,
        /// Upper bound on `prop_assume!` rejections across the run.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 4096,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is not counted.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (`prop_assume!`) with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case RNG (splitmix64 over a seed derived
    /// from the test name, the run seed, and the case index), with a
    /// recorded draw stream so the runner can replay and shrink a
    /// failing case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        /// Draw values to replay before falling back to `state`.
        replay: Vec<u64>,
        /// Draws handed out so far (replayed or fresh).
        record: Vec<u64>,
    }

    impl TestRng {
        /// The RNG for case `case` of test `name` under the
        /// environment's run seed.
        pub fn for_case(name: &str, case: u64) -> Self {
            Self::for_case_seeded(name, case, env_seed())
        }

        /// The RNG for case `case` of test `name` under an explicit
        /// run seed.
        pub fn for_case_seeded(name: &str, case: u64, run_seed: u64) -> Self {
            // FNV-1a over the name, mixed with the run seed and the
            // case index.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= run_seed.wrapping_mul(0xD6E8FEB86659FD93);
            TestRng {
                state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
                replay: Vec::new(),
                record: Vec::new(),
            }
        }

        /// A clone of this RNG's starting point that first replays
        /// the given draw stream, then continues deterministically.
        fn with_replay(name: &str, case: u64, run_seed: u64, replay: Vec<u64>) -> Self {
            let mut rng = Self::for_case_seeded(name, case, run_seed);
            rng.replay = replay;
            rng
        }

        /// The draws handed out so far.
        pub fn recorded(&self) -> &[u64] {
            &self.record
        }

        /// The next 64 random bits (replayed if a replay stream is
        /// loaded, freshly generated otherwise; always recorded).
        pub fn next_u64(&mut self) -> u64 {
            // Advance the generator state unconditionally so draws
            // after the replay prefix stay deterministic.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let fresh = {
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let value = if self.record.len() < self.replay.len() {
                self.replay[self.record.len()]
            } else {
                fresh
            };
            self.record.push(value);
            value
        }

        /// A uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            if n.is_power_of_two() {
                return self.next_u64() & (n - 1);
            }
            let zone = u64::MAX - u64::MAX % n;
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % n;
                }
            }
        }
    }

    /// A fully shrunk failure, as reported by [`run_cases_impl`].
    #[derive(Debug, Clone)]
    pub struct Failure {
        /// Case index (0-based) that first failed.
        pub case: u64,
        /// Failure message of the *shrunk* case.
        pub message: String,
        /// Shrink re-runs spent.
        pub shrink_iters: u32,
        /// Accepted shrinking steps (mutations that kept failing).
        pub shrink_steps: u32,
        /// The minimal failing draw stream.
        pub minimal_draws: Vec<u64>,
    }

    /// Candidate replacements for one draw, most aggressive first.
    fn shrink_candidates(v: u64) -> [Option<u64>; 3] {
        [
            (v != 0).then_some(0),
            (v / 2 != 0).then_some(v / 2),
            v.checked_sub(1),
        ]
    }

    /// Greedily shrink a failing draw stream: walk the draws, try
    /// smaller replacements, keep any that still fail, repeat until a
    /// fixpoint or the iteration budget. Returns the final failure.
    fn shrink_failure(
        name: &str,
        case: u64,
        run_seed: u64,
        config: &Config,
        case_fn: &mut impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        mut best_draws: Vec<u64>,
        mut best_msg: String,
    ) -> Failure {
        let mut iters = 0u32;
        let mut steps = 0u32;
        let mut improved = true;
        while improved && iters < config.max_shrink_iters {
            improved = false;
            let mut i = 0;
            while i < best_draws.len() && iters < config.max_shrink_iters {
                let mut advanced = true;
                // Descend greedily at this position before moving on.
                while advanced && iters < config.max_shrink_iters {
                    advanced = false;
                    for candidate in shrink_candidates(best_draws[i]).into_iter().flatten() {
                        let mut trial = best_draws.clone();
                        trial[i] = candidate;
                        let mut rng = TestRng::with_replay(name, case, run_seed, trial);
                        iters += 1;
                        if let Err(TestCaseError::Fail(msg)) = case_fn(&mut rng) {
                            // Keep the draws actually consumed: the
                            // mutation may have shortened the path.
                            best_draws = rng.record;
                            best_msg = msg;
                            steps += 1;
                            improved = true;
                            advanced = true;
                            break;
                        }
                        if iters >= config.max_shrink_iters {
                            break;
                        }
                    }
                }
                i += 1;
            }
        }
        Failure {
            case,
            message: best_msg,
            shrink_iters: iters,
            shrink_steps: steps,
            minimal_draws: best_draws,
        }
    }

    /// Drive one property across the configured number of cases,
    /// shrinking the first failure. Returns `None` when every case
    /// passed. Called by [`run_cases`]; public so the engine's own
    /// tests (and curious callers) can inspect the [`Failure`]
    /// instead of panicking.
    pub fn run_cases_impl(
        name: &str,
        config: &Config,
        mut case_fn: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) -> Option<Failure> {
        let run_seed = env_seed();
        let cases = env_cases().unwrap_or(config.cases);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < cases {
            let mut rng = TestRng::for_case_seeded(name, case, run_seed);
            let outcome = case_fn(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(msg)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected}); last: {msg}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    return Some(shrink_failure(
                        name,
                        case,
                        run_seed,
                        config,
                        &mut case_fn,
                        rng.record,
                        msg,
                    ));
                }
            }
            case += 1;
        }
        None
    }

    /// Drive one property across the configured cases, panicking with
    /// the shrunk counterexample on failure. Called by the
    /// [`crate::proptest!`] expansion — not user code.
    pub fn run_cases(
        name: &str,
        config: &Config,
        case_fn: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        if let Some(failure) = run_cases_impl(name, config, case_fn) {
            panic!(
                "proptest '{name}' failed at case #{} and was shrunk for {} \
                 re-runs ({} accepted steps; seed {} — rerun with the same \
                 {SEED_ENV} reproduces): {}",
                failure.case,
                failure.shrink_iters,
                failure.shrink_steps,
                env_seed(),
                failure.message,
            );
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Apply `f` to every generated value.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| f(inner.generate(rng))))
        }

        /// Keep only values satisfying `f` (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                for _ in 0..1000 {
                    let v = inner.generate(rng);
                    if f(&v) {
                        return v;
                    }
                }
                panic!("prop_filter exhausted its retry budget: {reason}");
            }))
        }

        /// Build recursive values: `self` is the leaf strategy and
        /// `recurse` wraps an inner strategy into one more layer, up
        /// to `depth` layers. `desired_size` and `expected_branch`
        /// are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = self.clone().boxed();
                // Mostly descend, sometimes bottom out early: keeps
                // generated sizes in check without a size budget.
                current = Union::new(vec![(1, leaf), (4, deeper)]).boxed();
            }
            current
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among strategies (the engine of
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Construct it.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Strategy generating uniformly random primitive values.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $( $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |__proptest_rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $crate::proptest!(@bind __proptest_rng $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (@bind $rng:ident) => {};
    (@bind $rng:ident ,) => {};
    (@bind $rng:ident $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    (@bind $rng:ident $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Weighted or unweighted choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Like `assert!`, but fails the current case instead of panicking
/// directly (so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, for property-test cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, for property-test cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Reject the current case unless `cond` holds (not counted toward
/// the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree_strategy() -> BoxedStrategy<usize> {
        let leaf = (0u32..8, any::<bool>()).prop_map(|(v, b)| v as usize + b as usize);
        leaf.boxed()
            .prop_recursive(3, 16, 2, |inner| {
                prop::collection::vec(inner, 2..4).prop_map(|xs| xs.iter().sum())
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0u64..65536, z in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 65536);
            prop_assert!((1..5).contains(&z), "z = {z}");
        }

        #[test]
        fn tuples_and_oneof(pair in (0u32..4, any::<bool>()), pick in prop_oneof![
            2 => Just(1u8),
            1 => Just(2u8),
        ]) {
            prop_assert!(pair.0 < 4);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn recursion_terminates(n in tree_strategy()) {
            prop_assert!(n < 10_000);
        }

        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run_cases(
            "always_fails",
            &ProptestConfig {
                cases: 1,
                ..ProptestConfig::default()
            },
            |_| Err(TestCaseError::fail("boom")),
        );
    }

    #[test]
    fn seeded_rng_is_deterministic_and_seed_sensitive() {
        let draw = |seed: u64| {
            let mut rng = crate::test_runner::TestRng::for_case_seeded("det", 7, seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(0), draw(0));
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(0), draw(42));

        let mut rng = crate::test_runner::TestRng::for_case_seeded("det", 7, 42);
        for _ in 0..16 {
            rng.next_u64();
        }
        assert_eq!(rng.recorded(), draw(42).as_slice());
    }

    /// `x in 0u64..1000` failing whenever `x >= 10` must shrink to
    /// exactly `x == 10` — the smallest failing input.
    #[test]
    fn shrinking_minimises_a_range_draw() {
        let strat = 0u64..1000;
        let mut last_failing = None;
        let failure =
            crate::test_runner::run_cases_impl("shrink_range", &ProptestConfig::default(), |rng| {
                let x = strat.generate(rng);
                if x >= 10 {
                    last_failing = Some(x);
                    return Err(TestCaseError::fail(format!("x = {x}")));
                }
                Ok(())
            })
            .expect("property must fail");
        assert_eq!(
            last_failing,
            Some(10),
            "greedy shrink should reach the boundary"
        );
        assert!(
            failure.shrink_steps > 0,
            "at least one shrink step should be accepted"
        );
        assert!(failure.shrink_iters <= ProptestConfig::default().max_shrink_iters);
    }

    /// A failing vector case must shrink structurally: the length
    /// draw collapses to the smallest failing length and every
    /// element draw collapses to the range minimum.
    #[test]
    fn shrinking_minimises_vector_structure() {
        let strat = prop::collection::vec(0u32..100, 0..10);
        let mut last_failing = None;
        crate::test_runner::run_cases_impl("shrink_vec", &ProptestConfig::default(), |rng| {
            let xs = strat.generate(rng);
            if xs.len() >= 3 {
                last_failing = Some(xs.clone());
                return Err(TestCaseError::fail(format!("len = {}", xs.len())));
            }
            Ok(())
        })
        .expect("property must fail");
        assert_eq!(last_failing, Some(vec![0, 0, 0]));
    }

    /// Shrinking a recursive strategy drives the structure toward
    /// leaves: the minimal failing tree-sum is the boundary value.
    #[test]
    fn shrinking_minimises_recursive_structures() {
        let strat = tree_strategy();
        let mut last_failing = None;
        crate::test_runner::run_cases_impl(
            "shrink_tree",
            &ProptestConfig {
                cases: 512,
                ..ProptestConfig::default()
            },
            |rng| {
                let n = strat.generate(rng);
                if n >= 4 {
                    last_failing = Some(n);
                    return Err(TestCaseError::fail(format!("n = {n}")));
                }
                Ok(())
            },
        )
        .expect("property must fail");
        assert_eq!(last_failing, Some(4));
    }

    /// Replaying a failure's minimal draw stream must reproduce the
    /// shrunk case exactly (this is what makes reports actionable).
    #[test]
    fn minimal_draws_replay_reproduces_failure() {
        let strat = 0u64..1000;
        let failure = crate::test_runner::run_cases_impl(
            "shrink_replay",
            &ProptestConfig::default(),
            |rng| {
                let x = strat.generate(rng);
                if x >= 10 {
                    return Err(TestCaseError::fail(format!("x = {x}")));
                }
                Ok(())
            },
        )
        .expect("property must fail");
        // Reconstruct the value from the recorded minimal stream: the
        // range strategy consumes one draw below its width.
        let reproduced = failure.minimal_draws[0] % 1000;
        assert_eq!(reproduced, 10);
    }
}
