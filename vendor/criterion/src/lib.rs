//! A minimal, dependency-free, offline drop-in for the subset of the
//! `criterion` API this workspace uses: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`] and [`black_box`].
//!
//! It times each benchmark with plain wall-clock sampling and prints
//! a one-line median — enough to compare hot paths locally without
//! the statistical machinery (or the dependency tree) of the real
//! crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque input blinder (re-exported `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            samples: 10,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().name, 10, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Time a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().name, self.samples, f);
        self
    }

    /// Time a closure against a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.into().name, self.samples, |b| f(b, input));
        self
    }

    /// End the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_nanos: Vec<u128>,
}

impl Bencher {
    /// Time one execution of `f` (called once per sample).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.sample_nanos.push(start.elapsed().as_nanos());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_nanos: Vec::with_capacity(samples),
    };
    // One untimed warm-up, then the requested samples.
    f(&mut bencher);
    bencher.sample_nanos.clear();
    for _ in 0..samples {
        f(&mut bencher);
    }
    bencher.sample_nanos.sort_unstable();
    let median = bencher
        .sample_nanos
        .get(bencher.sample_nanos.len() / 2)
        .copied()
        .unwrap_or(0);
    println!(
        "{name:<40} median {:>12.3} µs ({samples} samples)",
        median as f64 / 1000.0
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
                runs += 1;
            });
        group.finish();
        assert_eq!(runs, 4); // warm-up + 3 samples
    }

    #[test]
    fn bench_function_accepts_str() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
