//! Counterfactual reasoning over a diagnostic knowledge base — the
//! nested-counterfactual view of iterated revision (Eiter–Gottlob,
//! cited in §2.2.4).
//!
//! ```text
//! cargo run --example counterfactuals
//! ```
//!
//! A small circuit: power implies the fan spins, the fan and the lamp
//! share a fuse. We ask "would" and "might" questions under revision
//! (Dalal) and update (Winslett) semantics and watch them disagree in
//! exactly the way the office example predicts.

use revkb::logic::{parse, render, Signature};
use revkb::revision::{
    counterfactual::{holds, holds_compiled, might_hold},
    Counterfactual, ModelBasedOp,
};

fn main() {
    let mut sig = Signature::new();
    let t = parse(
        "power & fuse & (power & fuse -> fan) & (fuse -> lamp) & fan & lamp",
        &mut sig,
    )
    .expect("parse T");
    println!("T = {}", render(&t, &sig));
    println!();

    let queries: Vec<(&str, Counterfactual)> = vec![
        (
            "if the fuse blew, would the lamp be dark?",
            Counterfactual::would(
                parse("!fuse", &mut sig).unwrap(),
                Counterfactual::fact(parse("!lamp", &mut sig).unwrap()),
            ),
        ),
        (
            "if the fuse blew, might the lamp stay lit?",
            // handled below via might_hold
            Counterfactual::fact(parse("true", &mut sig).unwrap()),
        ),
        (
            "if the fuse blew and then power returned, would the fan spin?",
            Counterfactual::chain(
                [
                    parse("!fuse", &mut sig).unwrap(),
                    parse("power", &mut sig).unwrap(),
                ],
                parse("fan", &mut sig).unwrap(),
            ),
        ),
    ];

    for op in [ModelBasedOp::Dalal, ModelBasedOp::Winslett] {
        println!("— under {} semantics —", op.name());
        let q1 = &queries[0].1;
        println!("  {:<58} {}", queries[0].0, yn(holds(op, &t, q1)));
        let fuse_blew = parse("!fuse", &mut sig).unwrap();
        let lamp_on = parse("lamp", &mut sig).unwrap();
        println!(
            "  {:<58} {}",
            queries[1].0,
            yn(might_hold(op, &t, &fuse_blew, &lamp_on))
        );
        let q3 = &queries[2].1;
        let semantic = holds(op, &t, q3);
        let compiled = holds_compiled(op, &t, q3).expect("compiles");
        assert_eq!(semantic, compiled, "paths must agree");
        println!("  {:<58} {}", queries[2].0, yn(semantic));
        println!();
    }

    println!("The nested question is answered twice — semantically and through");
    println!("the compiled iterated representation (Table 2's YES cells) — and");
    println!("the answers agree.");
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}
