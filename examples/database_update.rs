//! The database scenario that motivates the bounded case (§4): a
//! large knowledge base, a small update.
//!
//! ```text
//! cargo run --example database_update
//! ```
//!
//! A personnel database records, per employee, a department bit and
//! an on-call bit, with integrity constraints linking them (every
//! engineering employee on the pager rotation, exactly one team lead
//! per department, …). The update — "employee 0 left engineering" —
//! touches two letters. The Section 4 constructions compile the
//! updated base into a *logically equivalent* formula only linearly
//! larger than the original, and queries run against the compilation.

use revkb::logic::{Formula, Signature, Var};
use revkb::revision::{ModelBasedOp, RevisedKb};

/// Build the database: for each employee `i`, letters `eng_i` (works
/// in engineering) and `oncall_i`, with constraints.
fn build_database(sig: &mut Signature, employees: usize) -> (Formula, Vec<Var>, Vec<Var>) {
    let eng: Vec<Var> = (0..employees)
        .map(|i| sig.var(&format!("eng{i}")))
        .collect();
    let oncall: Vec<Var> = (0..employees)
        .map(|i| sig.var(&format!("oncall{i}")))
        .collect();
    let mut constraints: Vec<Formula> = Vec::new();
    for i in 0..employees {
        // Engineering staff are on the pager rotation.
        constraints.push(Formula::var(eng[i]).implies(Formula::var(oncall[i])));
    }
    // The base facts: everyone currently in engineering and on call.
    for i in 0..employees {
        constraints.push(Formula::var(eng[i]));
        constraints.push(Formula::var(oncall[i]));
    }
    (Formula::and_all(constraints), eng, oncall)
}

fn main() {
    let employees = 12;
    let mut sig = Signature::new();
    let (t, eng, oncall) = build_database(&mut sig, employees);
    println!(
        "database: {} employees, |T| = {} variable occurrences",
        employees,
        t.size()
    );

    // The update touches a 2-letter alphabet: employee 0 left
    // engineering (and the constraint must be repaired).
    let p = Formula::var(eng[0]).not();
    println!("update:   P = !eng0  (|V(P)| = {})", p.vars().len());
    println!();

    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>14}",
        "operator", "|T'|", "|T'|/|T|", "oncall0 open?", "eng1 kept?"
    );
    println!("{}", "-".repeat(64));
    for op in ModelBasedOp::ALL {
        let kb = RevisedKb::compile(op, &t, &p).expect("bounded compile");
        // After the update: employee 0's on-call bit was recorded as
        // an independent fact, so it survives; employee 1's record
        // must be untouched.
        let still_oncall = kb.entails(&Formula::var(oncall[0]));
        let keeps_eng1 = kb.entails(&Formula::var(eng[1]));
        println!(
            "{:<10} {:>8} {:>11.2}x {:>14} {:>14}",
            op.name(),
            kb.size(),
            kb.size() as f64 / t.size() as f64,
            if still_oncall { "forced" } else { "open" },
            if keeps_eng1 { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "Every compilation is polynomial in |T| — Section 4's point:\n\
         with |V(P)| bounded, all model-based operators admit compact\n\
         forms. (Dalal's row uses Theorem 3.4's EXA circuit, whose\n\
         n·log n guard dominates at this small |T| but is asymptotically\n\
         negligible.)"
    );
}
