//! Approximate knowledge compilation of a revised base (§2.3's
//! Kautz–Selman / Gogic–Papadimitriou–Sideri connection): when the
//! exact revised base has no compact representation, its **least Horn
//! upper bound** still answers a sound (if incomplete) fragment of the
//! queries.
//!
//! ```text
//! cargo run --example approximation
//! ```

use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{
    horn_formula, horn_lub, is_horn_definable, revise_on, ModelBasedOp, ModelSet,
};

fn main() {
    // A wiring knowledge base over 5 lines; the revision makes a
    // disjunctive observation, which is exactly where Horn
    // approximation loses information.
    let line: Vec<Formula> = (0..5).map(|i| Formula::var(Var(i))).collect();
    let t = Formula::and_all(line.iter().cloned());
    let p = line[0]
        .clone()
        .not()
        .or(line[1].clone().not())
        .and(line[2].clone().not().or(line[3].clone().not()));

    let alpha = Alphabet::of_formulas([&t, &p]);
    println!("T = all 5 lines up; P = (¬l0 ∨ ¬l1) ∧ (¬l2 ∨ ¬l3)");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>16}",
        "operator", "models", "Horn?", "LUB models", "sound/complete"
    );
    println!("{}", "-".repeat(60));
    for op in ModelBasedOp::ALL {
        let revised = revise_on(op, &alpha, &t, &p);
        let horn = is_horn_definable(&revised);
        let lub = horn_lub(&revised);
        // Query battery: single lines up/down.
        let queries: Vec<Formula> = (0..5)
            .flat_map(|i| {
                [
                    Formula::var(Var(i)),
                    Formula::var(Var(i)).not(),
                    Formula::var(Var(i)).or(Formula::var(Var((i + 1) % 5))),
                ]
            })
            .collect();
        let mut sound = true;
        let mut complete = 0usize;
        let mut exact_yes = 0usize;
        for q in &queries {
            let exact = revised.entails(q);
            let approx = lub.entails(q);
            // Upper bound: approx yes ⇒ exact yes.
            if approx && !exact {
                sound = false;
            }
            if exact {
                exact_yes += 1;
                if approx {
                    complete += 1;
                }
            }
        }
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>10}/{}",
            op.name(),
            revised.len(),
            if horn { "yes" } else { "no" },
            lub.len(),
            if sound { complete } else { usize::MAX },
            exact_yes,
        );
        debug_assert!(sound, "Horn LUB must be an upper bound");
        let _ = complete;
    }
    println!();

    // Show the Horn formula for one operator.
    let weber = revise_on(ModelBasedOp::Weber, &alpha, &t, &p);
    let lub = horn_lub(&weber);
    let lub_formula = horn_formula(&lub);
    println!(
        "Weber LUB as a Horn theory ({} variable occurrences):",
        lub_formula.size()
    );
    let sig = {
        let mut s = revkb::logic::Signature::new();
        for i in 0..5 {
            s.var(&format!("l{i}"));
        }
        s
    };
    println!("  {}", revkb::logic::render(&lub_formula, &sig));
    println!();
    println!(
        "Every 'yes' the approximation gives is sound (LUB is an upper\n\
         bound); the gap between the columns is the completeness price —\n\
         §2.3's point that approximation and equivalence-preserving\n\
         compilation are different games."
    );
    // Keep the exact set alive for the assert above in debug builds.
    let _ = ModelSet::new(alpha, vec![]);
}
