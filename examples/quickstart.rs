//! Quickstart: the paper's office example under every revision
//! operator.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! You heard a voice in George and Bill's office (`T = g ∨ b`), then
//! saw George in the corridor (`P = ¬g`). *Revision* operators treat
//! the old belief as possibly wrong but still usable — they conclude
//! the voice was Bill's. *Update* operators treat the world as having
//! changed — they refuse to conclude anything about Bill.

use revkb::logic::{parse, render, Signature};
use revkb::revision::{revise, ModelBasedOp, Theory};

fn main() {
    let mut sig = Signature::new();
    let t = parse("george | bill", &mut sig).expect("parse T");
    let p = parse("!george", &mut sig).expect("parse P");
    let bill = parse("bill", &mut sig).expect("parse query");

    println!("T = {}   (someone is in the office)", render(&t, &sig));
    println!("P = {}   (George is in the corridor)", render(&p, &sig));
    println!();
    println!("{:<10} {:>8}  models of T * P", "operator", "T*P⊨bill");
    println!("{}", "-".repeat(60));

    for op in ModelBasedOp::ALL {
        let result = revise(op, &t, &p);
        let models: Vec<String> = result
            .interpretations()
            .iter()
            .map(|m| {
                let names: Vec<&str> = m.iter().filter_map(|&v| sig.name(v)).collect();
                format!("{{{}}}", names.join(","))
            })
            .collect();
        println!(
            "{:<10} {:>8}  {}",
            op.name(),
            if result.entails(&bill) { "yes" } else { "no" },
            models.join(" ")
        );
    }

    // Formula-based operators care about the syntax of T.
    println!();
    println!("Formula-based revision is syntax-sensitive (§2.2.1):");
    let mut sig2 = Signature::new();
    let a = parse("a", &mut sig2).unwrap();
    let b = parse("b", &mut sig2).unwrap();
    let a_imp_b = parse("a -> b", &mut sig2).unwrap();
    let not_b = parse("!b", &mut sig2).unwrap();
    let t1 = Theory::new([a.clone(), b.clone()]);
    let t2 = Theory::new([a.clone(), a_imp_b]);
    for (name, theory) in [("T1 = {a, b}", &t1), ("T2 = {a, a -> b}", &t2)] {
        let entails_a = revkb::revision::gfuv_entails(theory, &not_b, &a);
        println!(
            "  {name:<18} *GFUV !b ⊨ a ?  {}",
            if entails_a { "yes" } else { "no" }
        );
    }
    println!("  (logically equivalent theories, different conclusions)");
}
