//! The headline contrast of the paper, live: GFUV's revised base
//! explodes while Dalal's and Weber's stay compact.
//!
//! ```text
//! cargo run --example compactability_demo
//! ```
//!
//! Nebel's family `T₁ = {x₁…xₘ, y₁…yₘ}`, `P₁ = ⋀(xᵢ ≢ yᵢ)` drives
//! `|W(T₁,P₁)| = 2^m`, so GFUV's explicit representation doubles with
//! every step of `m`. Feeding the *same* inputs (as one conjunction)
//! to Dalal's Theorem 3.4 construction and Weber's Theorem 3.5
//! construction yields representations that grow polynomially.

use revkb::instances::NebelExample;
use revkb::revision::compact::{dalal_compact_auto, weber_compact_auto};
use revkb::revision::gfuv_explicit;

fn main() {
    println!(
        "{:>3} {:>10} {:>12} {:>12} {:>12}",
        "m", "|T|+|P|", "GFUV expl.", "Dalal T'", "Weber T'"
    );
    println!("{}", "-".repeat(55));
    for m in 1..=9 {
        let ex = NebelExample::new(m);
        let input_size = ex.t.size() + ex.p.size();
        let gfuv = gfuv_explicit(&ex.t, &ex.p, 1 << 14)
            .map(|f| f.size().to_string())
            .unwrap_or_else(|| ">16384 worlds".into());
        let t_conj = ex.t.conjunction();
        let dalal = dalal_compact_auto(&t_conj, &ex.p).size();
        let weber = weber_compact_auto(&t_conj, &ex.p)
            .expect("delta enumeration")
            .size();
        println!("{m:>3} {input_size:>10} {gfuv:>12} {dalal:>12} {weber:>12}");
    }
    println!();
    println!("GFUV's column doubles per row (Theorem 3.1: no polynomial");
    println!("representation exists unless NP ⊆ coNP/poly); Dalal's and");
    println!("Weber's columns grow polynomially (Theorems 3.4, 3.5).");
}
