//! Iterated belief revision for an agent (§5–§6): a robot keeps
//! revising its world model as observations arrive, using the
//! delayed-compilation strategy the paper's conclusions recommend.
//!
//! ```text
//! cargo run --example agent_beliefs
//! ```
//!
//! The robot tracks four rooms (`litᵢ` = room `i` is lit) and starts
//! believing all rooms are lit with a wiring constraint. Observations
//! arrive one at a time; queries are answered by compiling
//! `T *D P¹ *D … *D Pᵏ` into Theorem 5.1's `Φₖ` on demand. The size
//! of the compiled representation grows *polynomially* with the
//! number of revisions — the paper's Table 2 "YES" entry for Dalal
//! under query equivalence.

use revkb::logic::{Formula, Signature};
use revkb::revision::{DelayedKb, ModelBasedOp};

fn main() {
    let mut sig = Signature::new();
    let lit: Vec<Formula> = (0..4)
        .map(|i| Formula::var(sig.var(&format!("lit{i}"))))
        .collect();

    // Initial beliefs: all rooms lit, and rooms 2/3 share a breaker.
    let t = Formula::and_all(lit.iter().cloned()).and(lit[2].clone().iff(lit[3].clone()));
    println!("initial beliefs: all rooms lit; rooms 2 and 3 share a breaker");
    println!("|T| = {}\n", t.size());

    let mut kb = DelayedKb::new(ModelBasedOp::Dalal, t);

    let observations: Vec<(&str, Formula)> = vec![
        ("room 0 is dark", lit[0].clone().not()),
        (
            "room 2 or 3 is dark",
            lit[2].clone().not().or(lit[3].clone().not()),
        ),
        ("room 1 is dark", lit[1].clone().not()),
        ("room 0 is lit again", lit[0].clone()),
    ];

    for (label, p) in observations {
        kb.revise(p);
        println!("observe: {label}");
        let m = kb.pending().len();
        // Query after each revision (compiles Φₘ lazily).
        let lit3 = &lit[3];
        let q = lit3.clone();
        let believes_lit3 = kb.entails(&q).expect("compile");
        let believes_dark3 = kb.entails(&q.clone().not()).expect("compile");
        let verdict = match (believes_lit3, believes_dark3) {
            (true, _) => "lit",
            (_, true) => "dark",
            _ => "unknown",
        };
        println!(
            "  after {m} revision(s): room 3 is {verdict}; compiled |Φ_{m}| = {}",
            kb.compiled_size().expect("compiled")
        );
    }

    println!();
    println!("Note how |Φₘ| grows by a bounded increment per revision —");
    println!("the paper's point that Dalal's operator stays query-compactable");
    println!("under iteration (Theorem 5.1), as long as new letters are allowed.");
}
